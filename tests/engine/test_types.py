"""Tests for value types, coercion and relation schemas."""

import pytest

from repro.engine.types import (
    AttributeDef,
    DataType,
    RelationSchema,
    coerce_value,
    compare_values,
    values_equal,
)
from repro.errors import SchemaError, TypeMismatchError, UnknownAttributeError


class TestDataType:
    def test_from_name_aliases(self):
        assert DataType.from_name("varchar") is DataType.STRING
        assert DataType.from_name("TEXT") is DataType.STRING
        assert DataType.from_name("int") is DataType.INTEGER
        assert DataType.from_name("double") is DataType.FLOAT
        assert DataType.from_name("bool") is DataType.BOOLEAN

    def test_from_name_unknown_raises(self):
        with pytest.raises(SchemaError):
            DataType.from_name("blob")

    def test_python_types(self):
        assert str in DataType.STRING.python_types()
        assert int in DataType.INTEGER.python_types()


class TestCoerceValue:
    def test_null_passes_through(self):
        assert coerce_value(None, DataType.INTEGER) is None

    def test_string_coercion(self):
        assert coerce_value(42, DataType.STRING) == "42"
        assert coerce_value(True, DataType.STRING) == "true"

    def test_integer_from_string(self):
        assert coerce_value(" 17 ", DataType.INTEGER) == 17

    def test_integer_from_whole_float(self):
        assert coerce_value(3.0, DataType.INTEGER) == 3

    def test_integer_rejects_fractional_string(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("3.5", DataType.INTEGER)

    def test_float_from_string(self):
        assert coerce_value("2.5", DataType.FLOAT) == 2.5

    def test_float_rejects_garbage(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("abc", DataType.FLOAT)

    def test_boolean_from_strings(self):
        assert coerce_value("yes", DataType.BOOLEAN) is True
        assert coerce_value("0", DataType.BOOLEAN) is False

    def test_boolean_rejects_other(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("maybe", DataType.BOOLEAN)


class TestAttributeDef:
    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            AttributeDef("")

    def test_not_null_enforced(self):
        attr = AttributeDef("A", DataType.STRING, nullable=False)
        with pytest.raises(TypeMismatchError):
            attr.coerce(None)

    def test_nullable_accepts_none(self):
        assert AttributeDef("A").coerce(None) is None


class TestRelationSchema:
    def test_of_mixed_column_specs(self):
        schema = RelationSchema.of("r", ["A", ("B", "int"), AttributeDef("C", DataType.FLOAT)])
        assert schema.attribute_names == ["A", "B", "C"]
        assert schema.attribute("B").dtype is DataType.INTEGER

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", [AttributeDef("A"), AttributeDef("A")])

    def test_key_must_exist(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", [AttributeDef("A")], key=("B",))

    def test_index_of_and_contains(self):
        schema = RelationSchema.of("r", ["A", "B"])
        assert schema.index_of("B") == 1
        assert "A" in schema
        assert "Z" not in schema

    def test_unknown_attribute_lookup(self):
        schema = RelationSchema.of("r", ["A"])
        with pytest.raises(UnknownAttributeError):
            schema.attribute("missing")

    def test_project_preserves_order(self):
        schema = RelationSchema.of("r", ["A", "B", "C"])
        assert schema.project(["C", "A"]).attribute_names == ["C", "A"]

    def test_coerce_row_fills_missing_with_null(self):
        schema = RelationSchema.of("r", ["A", ("B", "int")])
        assert schema.coerce_row({"B": "5"}) == {"A": None, "B": 5}

    def test_coerce_row_rejects_unknown(self):
        schema = RelationSchema.of("r", ["A"])
        with pytest.raises(UnknownAttributeError):
            schema.coerce_row({"A": "x", "Z": 1})

    def test_dict_roundtrip(self):
        schema = RelationSchema.of("r", ["A", ("B", "int")], key=["A"])
        rebuilt = RelationSchema.from_dict(schema.to_dict())
        assert rebuilt.attribute_names == schema.attribute_names
        assert rebuilt.key == ("A",)
        assert rebuilt.attribute("B").dtype is DataType.INTEGER


class TestValueComparison:
    def test_null_never_equal(self):
        assert not values_equal(None, None)
        assert not values_equal(None, 1)

    def test_numeric_cross_type_equality(self):
        assert values_equal(1, 1.0)

    def test_bool_only_equal_to_bool(self):
        assert values_equal(True, True)
        assert not values_equal(True, 1)

    def test_compare_values_orders_numbers_and_strings(self):
        assert compare_values(1, 2) == -1
        assert compare_values("b", "a") == 1
        assert compare_values(3, 3.0) == 0

    def test_compare_values_null_or_mixed_is_none(self):
        assert compare_values(None, 1) is None
        assert compare_values("a", 1) is None
