"""End-to-end tests of SQL execution against the engine."""

import pytest

from repro.engine.database import Database
from repro.engine.sql.planner import explain, plan_select
from repro.engine.sql.parser import parse_sql
from repro.engine.types import RelationSchema
from repro.errors import SqlExecutionError, SqlPlanError


@pytest.fixture
def db():
    database = Database()
    database.create_relation(
        RelationSchema.of("emp", ["name", ("salary", "int"), "dept", "city"]),
        rows=[
            {"name": "ann", "salary": 10, "dept": "eng", "city": "EDI"},
            {"name": "bob", "salary": 20, "dept": "eng", "city": "LDN"},
            {"name": "cat", "salary": 30, "dept": "ops", "city": "EDI"},
            {"name": "dan", "salary": 40, "dept": "ops", "city": None},
        ],
    )
    database.create_relation(
        RelationSchema.of("dept", ["dept", "manager"]),
        rows=[
            {"dept": "eng", "manager": "erin"},
            {"dept": "ops", "manager": "omar"},
        ],
    )
    return database


class TestSelectBasics:
    def test_projection_and_alias(self, db):
        result = db.execute("SELECT name AS who, salary FROM emp WHERE salary >= 30")
        assert result.columns == ["who", "salary"]
        assert {row["who"] for row in result} == {"cat", "dan"}

    def test_star_excludes_tid(self, db):
        rows = db.query("SELECT * FROM emp LIMIT 1")
        assert set(rows[0]) == {"name", "salary", "dept", "city"}

    def test_tid_pseudo_column(self, db):
        rows = db.query("SELECT t._tid AS tid, t.name FROM emp t WHERE t.name = 'cat'")
        assert rows == [{"tid": 2, "name": "cat"}]

    def test_where_null_comparison_filters_row(self, db):
        rows = db.query("SELECT name FROM emp WHERE city = 'EDI'")
        assert {row["name"] for row in rows} == {"ann", "cat"}

    def test_is_null_and_is_not_null(self, db):
        assert db.query("SELECT name FROM emp WHERE city IS NULL")[0]["name"] == "dan"
        assert len(db.query("SELECT name FROM emp WHERE city IS NOT NULL")) == 3

    def test_in_and_not_in(self, db):
        rows = db.query("SELECT name FROM emp WHERE dept IN ('ops')")
        assert {row["name"] for row in rows} == {"cat", "dan"}
        rows = db.query("SELECT name FROM emp WHERE dept NOT IN ('ops')")
        assert {row["name"] for row in rows} == {"ann", "bob"}

    def test_like(self, db):
        rows = db.query("SELECT name FROM emp WHERE name LIKE '%a%'")
        assert {row["name"] for row in rows} == {"ann", "cat", "dan"}

    def test_order_by_and_limit(self, db):
        rows = db.query("SELECT name FROM emp ORDER BY salary DESC LIMIT 2")
        assert [row["name"] for row in rows] == ["dan", "cat"]

    def test_distinct(self, db):
        rows = db.query("SELECT DISTINCT dept FROM emp")
        assert sorted(row["dept"] for row in rows) == ["eng", "ops"]

    def test_select_without_from(self, db):
        assert db.execute("SELECT 2 + 3 AS v").scalar() == 5

    def test_case_expression(self, db):
        rows = db.query(
            "SELECT name, CASE WHEN salary >= 30 THEN 'high' ELSE 'low' END AS band FROM emp"
        )
        bands = {row["name"]: row["band"] for row in rows}
        assert bands == {"ann": "low", "bob": "low", "cat": "high", "dan": "high"}

    def test_scalar_functions(self, db):
        row = db.query("SELECT UPPER(name) AS u, LENGTH(name) AS l FROM emp WHERE name = 'ann'")[0]
        assert row == {"u": "ANN", "l": 3}

    def test_concat_and_coalesce(self, db):
        row = db.query(
            "SELECT CONCAT(name, '@', COALESCE(city, 'unknown')) AS email FROM emp WHERE name = 'dan'"
        )[0]
        assert row["email"] == "dan@unknown"

    def test_parameterised_query(self, db):
        rows = db.query("SELECT name FROM emp WHERE dept = ? AND salary > ?", ["eng", 15])
        assert [row["name"] for row in rows] == ["bob"]

    def test_missing_parameter_raises(self, db):
        with pytest.raises(SqlExecutionError):
            db.query("SELECT name FROM emp WHERE dept = ?")


class TestAggregates:
    def test_group_by_count(self, db):
        rows = db.query("SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept ORDER BY dept")
        assert rows == [{"dept": "eng", "n": 2}, {"dept": "ops", "n": 2}]

    def test_having_filters_groups(self, db):
        rows = db.query(
            "SELECT city, COUNT(*) AS n FROM emp WHERE city IS NOT NULL "
            "GROUP BY city HAVING COUNT(*) > 1"
        )
        assert rows == [{"city": "EDI", "n": 2}]

    def test_count_distinct(self, db):
        result = db.execute("SELECT COUNT(DISTINCT dept) AS n FROM emp")
        assert result.scalar() == 2

    def test_sum_avg_min_max(self, db):
        row = db.query(
            "SELECT SUM(salary) AS s, AVG(salary) AS a, MIN(salary) AS lo, MAX(salary) AS hi FROM emp"
        )[0]
        assert row == {"s": 100, "a": 25, "lo": 10, "hi": 40}

    def test_aggregate_skips_nulls(self, db):
        result = db.execute("SELECT COUNT(city) AS n FROM emp")
        assert result.scalar() == 3

    def test_aggregate_without_group_by_single_row(self, db):
        rows = db.query("SELECT COUNT(*) AS n FROM emp WHERE dept = 'eng'")
        assert rows == [{"n": 2}]

    def test_aggregate_outside_group_context_raises(self, db):
        with pytest.raises(SqlExecutionError):
            db.query("SELECT name FROM emp WHERE COUNT(*) > 1")

    def test_having_without_aggregate_is_plan_error(self, db):
        with pytest.raises(SqlPlanError):
            db.query("SELECT name FROM emp HAVING name = 'ann'")


class TestJoins:
    def test_cross_join_with_filter(self, db):
        rows = db.query(
            "SELECT e.name, d.manager FROM emp e, dept d WHERE e.dept = d.dept AND e.salary > 25"
        )
        assert {(row["name"], row["manager"]) for row in rows} == {
            ("cat", "omar"),
            ("dan", "omar"),
        }

    def test_inner_join_on(self, db):
        rows = db.query(
            "SELECT e.name, d.manager FROM emp e INNER JOIN dept d ON e.dept = d.dept "
            "WHERE e.name = 'ann'"
        )
        assert rows == [{"name": "ann", "manager": "erin"}]

    def test_ambiguous_column_raises(self, db):
        with pytest.raises(SqlExecutionError):
            db.query("SELECT dept FROM emp e, dept d")

    def test_unknown_column_raises(self, db):
        with pytest.raises(SqlExecutionError):
            db.query("SELECT missing FROM emp")


class TestDml:
    def test_insert_then_visible(self, db):
        db.execute("INSERT INTO emp (name, salary, dept, city) VALUES ('eve', 50, 'eng', 'EDI')")
        assert db.execute("SELECT COUNT(*) AS n FROM emp").scalar() == 5

    def test_update_with_where(self, db):
        updated = db.execute("UPDATE emp SET salary = salary + 5 WHERE dept = 'eng'")
        assert updated == 2
        assert db.execute("SELECT SUM(salary) AS s FROM emp").scalar() == 110

    def test_update_all_rows(self, db):
        assert db.execute("UPDATE emp SET city = 'X'") == 4

    def test_delete_with_where(self, db):
        deleted = db.execute("DELETE FROM emp WHERE salary < 15")
        assert deleted == 1
        assert db.execute("SELECT COUNT(*) AS n FROM emp").scalar() == 3

    def test_create_insert_select_roundtrip(self, db):
        db.execute("CREATE TABLE log (event varchar, level int)")
        db.execute("INSERT INTO log (event, level) VALUES ('boot', 1)")
        assert db.query("SELECT event FROM log") == [{"event": "boot"}]

    def test_drop_table_if_exists(self, db):
        assert db.execute("DROP TABLE IF EXISTS nothere") == 0
        db.execute("CREATE TABLE gone (a int)")
        assert db.execute("DROP TABLE gone") == 1


class TestPlanner:
    def test_explain_contains_nodes(self, db):
        plan = plan_select(parse_sql(
            "SELECT dept, COUNT(*) AS n FROM emp WHERE salary > 0 GROUP BY dept ORDER BY n LIMIT 1"
        ))
        text = explain(plan)
        assert "Scan emp" in text
        assert "Filter" in text
        assert "Aggregate" in text
        assert "Sort" in text
        assert "Limit" in text

    def test_duplicate_binding_rejected(self, db):
        with pytest.raises(SqlPlanError):
            plan_select(parse_sql("SELECT * FROM emp t, dept t"))

    def test_resultset_helpers(self, db):
        result = db.execute("SELECT name, salary FROM emp ORDER BY salary LIMIT 2")
        assert result.column("name") == ["ann", "bob"]
        assert result.to_tuples() == [("ann", 10), ("bob", 20)]
        with pytest.raises(SqlExecutionError):
            result.scalar()
