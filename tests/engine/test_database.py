"""Tests for the database catalog and SQL entry point."""

import pytest

from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.engine.types import RelationSchema
from repro.errors import DuplicateRelationError, UnknownRelationError


@pytest.fixture
def database():
    db = Database("testdb")
    db.create_relation(
        RelationSchema.of("emp", ["name", ("salary", "int"), "dept"]),
        rows=[
            {"name": "ann", "salary": 10, "dept": "eng"},
            {"name": "bob", "salary": 20, "dept": "eng"},
            {"name": "cat", "salary": 30, "dept": "ops"},
        ],
    )
    return db


class TestCatalog:
    def test_create_and_lookup(self, database):
        assert database.has_relation("emp")
        assert len(database.relation("emp")) == 3

    def test_duplicate_create_rejected(self, database):
        with pytest.raises(DuplicateRelationError):
            database.create_relation(RelationSchema.of("emp", ["x"]))

    def test_replace_allowed(self, database):
        database.create_relation(RelationSchema.of("emp", ["x"]), replace=True)
        assert database.relation("emp").attribute_names == ["x"]

    def test_unknown_relation_raises(self, database):
        with pytest.raises(UnknownRelationError):
            database.relation("missing")

    def test_drop(self, database):
        database.drop_relation("emp")
        assert not database.has_relation("emp")
        with pytest.raises(UnknownRelationError):
            database.drop_relation("emp")

    def test_add_existing_relation_object(self, database):
        other = Relation(RelationSchema.of("other", ["a"]))
        database.add_relation(other)
        assert database.has_relation("other")
        with pytest.raises(DuplicateRelationError):
            database.add_relation(other)

    def test_relation_names_sorted(self, database):
        database.create_relation(RelationSchema.of("aaa", ["x"]))
        assert database.relation_names() == ["aaa", "emp"]

    def test_schema_summary(self, database):
        assert database.schema_summary() == {"emp": ["name", "salary", "dept"]}


class TestSqlEntryPoint:
    def test_query_returns_rows(self, database):
        rows = database.query("SELECT name FROM emp WHERE salary > 15 ORDER BY name")
        assert [row["name"] for row in rows] == ["bob", "cat"]

    def test_execute_insert_returns_count(self, database):
        count = database.execute("INSERT INTO emp (name, salary, dept) VALUES ('dan', 5, 'ops')")
        assert count == 1
        assert len(database.relation("emp")) == 4

    def test_execute_create_table(self, database):
        database.execute("CREATE TABLE t (a varchar, b int)")
        assert database.has_relation("t")

    def test_parameters(self, database):
        rows = database.query("SELECT name FROM emp WHERE dept = ?", ["ops"])
        assert [row["name"] for row in rows] == ["cat"]
