"""Tests for the in-memory relation and its tuple-id semantics."""

import pytest

from repro.engine.relation import Relation
from repro.engine.types import DataType, RelationSchema
from repro.errors import ConstraintViolationError, UnknownTupleError


@pytest.fixture
def schema():
    return RelationSchema.of("people", ["name", ("age", "int"), "city"])


@pytest.fixture
def relation(schema):
    return Relation.from_rows(
        schema,
        [
            {"name": "ann", "age": 30, "city": "EDI"},
            {"name": "bob", "age": 40, "city": "LDN"},
            {"name": "cat", "age": 30, "city": "EDI"},
        ],
    )


class TestBasics:
    def test_len_and_tids(self, relation):
        assert len(relation) == 3
        assert relation.tids() == [0, 1, 2]

    def test_insert_returns_increasing_tids(self, relation):
        tid = relation.insert({"name": "dan", "age": 20, "city": "NYC"})
        assert tid == 3
        assert relation.get(3)["name"] == "dan"

    def test_insert_coerces_types(self, relation):
        tid = relation.insert({"name": "eve", "age": "55", "city": "PAR"})
        assert relation.value(tid, "age") == 55

    def test_get_returns_copy(self, relation):
        row = relation.get(0)
        row["name"] = "mutated"
        assert relation.value(0, "name") == "ann"

    def test_unknown_tid_raises(self, relation):
        with pytest.raises(UnknownTupleError):
            relation.get(99)

    def test_contains(self, relation):
        assert 0 in relation
        assert 99 not in relation


class TestMutation:
    def test_delete_removes_and_returns_row(self, relation):
        row = relation.delete(1)
        assert row["name"] == "bob"
        assert 1 not in relation
        assert len(relation) == 2

    def test_deleted_tid_not_reused(self, relation):
        relation.delete(2)
        new_tid = relation.insert({"name": "zoe", "age": 1, "city": "EDI"})
        assert new_tid == 3

    def test_update_returns_old_row(self, relation):
        old = relation.update(0, {"city": "GLA"})
        assert old["city"] == "EDI"
        assert relation.value(0, "city") == "GLA"

    def test_update_coerces(self, relation):
        relation.update(0, {"age": "31"})
        assert relation.value(0, "age") == 31

    def test_clear(self, relation):
        relation.clear()
        assert len(relation) == 0
        assert relation.insert({"name": "new", "age": 1, "city": "X"}) == 3


class TestKeyConstraint:
    def test_duplicate_key_rejected(self):
        schema = RelationSchema.of("users", ["id", "name"], key=["id"])
        relation = Relation(schema)
        relation.insert({"id": "u1", "name": "a"})
        with pytest.raises(ConstraintViolationError):
            relation.insert({"id": "u1", "name": "b"})

    def test_null_key_rejected(self):
        schema = RelationSchema.of("users", ["id", "name"], key=["id"])
        relation = Relation(schema)
        with pytest.raises(ConstraintViolationError):
            relation.insert({"name": "a"})

    def test_update_to_duplicate_key_rejected(self):
        schema = RelationSchema.of("users", ["id", "name"], key=["id"])
        relation = Relation(schema)
        relation.insert({"id": "u1", "name": "a"})
        relation.insert({"id": "u2", "name": "b"})
        with pytest.raises(ConstraintViolationError):
            relation.update(1, {"id": "u1"})

    def test_update_keeping_same_key_allowed(self):
        schema = RelationSchema.of("users", ["id", "name"], key=["id"])
        relation = Relation(schema)
        relation.insert({"id": "u1", "name": "a"})
        relation.update(0, {"name": "renamed"})
        assert relation.value(0, "name") == "renamed"


class TestQueriesAndIndexes:
    def test_select_predicate(self, relation):
        matches = relation.select(lambda row: row["age"] == 30)
        assert {tid for tid, _row in matches} == {0, 2}

    def test_distinct_values_excludes_null(self, relation):
        relation.insert({"name": "nul", "age": None, "city": "EDI"})
        assert set(relation.distinct_values("age")) == {30, 40}

    def test_lookup_uses_index(self, relation):
        assert relation.lookup(["city"], ["EDI"]) == [0, 2]
        index = relation.index_on(("city",))
        assert index is not None

    def test_index_maintained_on_update_and_delete(self, relation):
        relation.create_index(["city"])
        relation.update(0, {"city": "LDN"})
        assert relation.lookup(["city"], ["EDI"]) == [2]
        relation.delete(2)
        assert relation.lookup(["city"], ["EDI"]) == []

    def test_copy_is_independent(self, relation):
        clone = relation.copy()
        clone.update(0, {"name": "changed"})
        assert relation.value(0, "name") == "ann"
        assert clone.tids() == relation.tids()

    def test_to_list_in_tid_order(self, relation):
        rows = relation.to_list()
        assert [row["name"] for row in rows] == ["ann", "bob", "cat"]
