"""Tests for the SQL parser."""

import pytest

from repro.engine.sql import ast
from repro.engine.sql.parser import parse_sql
from repro.errors import SqlParseError


class TestSelectParsing:
    def test_simple_select(self):
        statement = parse_sql("SELECT a, b FROM t")
        assert isinstance(statement, ast.Select)
        assert len(statement.items) == 2
        assert statement.from_tables[0].name == "t"

    def test_select_star_and_qualified_star(self):
        statement = parse_sql("SELECT *, t.* FROM t")
        assert isinstance(statement.items[0].expression, ast.Star)
        assert statement.items[1].expression.table == "t"

    def test_aliases_with_and_without_as(self):
        statement = parse_sql("SELECT a AS x, b y FROM t u")
        assert statement.items[0].alias == "x"
        assert statement.items[1].alias == "y"
        assert statement.from_tables[0].alias == "u"

    def test_where_and_or_not_precedence(self):
        statement = parse_sql("SELECT a FROM t WHERE NOT a = 1 AND b = 2 OR c = 3")
        assert isinstance(statement.where, ast.BinaryOp)
        assert statement.where.op == "or"
        assert statement.where.left.op == "and"

    def test_group_by_having(self):
        statement = parse_sql(
            "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept HAVING COUNT(*) > 1"
        )
        assert len(statement.group_by) == 1
        assert statement.having is not None

    def test_count_distinct(self):
        statement = parse_sql("SELECT COUNT(DISTINCT city) FROM t")
        call = statement.items[0].expression
        assert isinstance(call, ast.FunctionCall)
        assert call.distinct

    def test_order_by_directions_and_limit(self):
        statement = parse_sql("SELECT a FROM t ORDER BY a DESC, b ASC LIMIT 5")
        assert statement.order_by[0].ascending is False
        assert statement.order_by[1].ascending is True
        assert statement.limit == 5

    def test_select_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct

    def test_cross_join_and_inner_join(self):
        statement = parse_sql(
            "SELECT * FROM a x, b y INNER JOIN c z ON x.id = z.id"
        )
        assert len(statement.from_tables) == 2
        assert len(statement.joins) == 1
        assert statement.joins[0].table.alias == "z"

    def test_in_like_is_null_between_not(self):
        statement = parse_sql(
            "SELECT a FROM t WHERE a IN ('x','y') AND b NOT LIKE 'z%' AND c IS NOT NULL"
        )
        conjunct = statement.where
        assert conjunct.op == "and"

    def test_case_when(self):
        statement = parse_sql("SELECT CASE WHEN a = 1 THEN 'one' ELSE 'other' END FROM t")
        expression = statement.items[0].expression
        assert isinstance(expression, ast.CaseWhen)
        assert expression.else_value is not None

    def test_arithmetic_precedence(self):
        statement = parse_sql("SELECT 1 + 2 * 3")
        expression = statement.items[0].expression
        assert expression.op == "+"
        assert expression.right.op == "*"

    def test_parameters_are_numbered(self):
        statement = parse_sql("SELECT a FROM t WHERE a = ? AND b = ?")
        refs = []

        def collect(node):
            if isinstance(node, ast.Parameter):
                refs.append(node.index)
            if isinstance(node, ast.BinaryOp):
                collect(node.left)
                collect(node.right)

        collect(statement.where)
        assert refs == [0, 1]

    def test_select_without_from(self):
        statement = parse_sql("SELECT 1 + 1 AS two")
        assert statement.from_tables == ()


class TestDmlAndDdlParsing:
    def test_insert_multiple_rows(self):
        statement = parse_sql("INSERT INTO t (a, b) VALUES ('x', 1), ('y', 2)")
        assert isinstance(statement, ast.Insert)
        assert statement.columns == ("a", "b")
        assert len(statement.rows) == 2

    def test_insert_without_columns(self):
        statement = parse_sql("INSERT INTO t VALUES (1, 2)")
        assert statement.columns == ()

    def test_update(self):
        statement = parse_sql("UPDATE t SET a = 1, b = 'x' WHERE c = 2")
        assert isinstance(statement, ast.Update)
        assert len(statement.assignments) == 2
        assert statement.where is not None

    def test_delete(self):
        statement = parse_sql("DELETE FROM t WHERE a = 1")
        assert isinstance(statement, ast.Delete)

    def test_create_table_with_primary_key(self):
        statement = parse_sql(
            "CREATE TABLE t (a varchar NOT NULL, b int, PRIMARY KEY (a))"
        )
        assert isinstance(statement, ast.CreateTable)
        assert statement.columns[0].not_null
        assert statement.primary_key == ("a",)

    def test_drop_table_if_exists(self):
        statement = parse_sql("DROP TABLE IF EXISTS t")
        assert isinstance(statement, ast.DropTable)
        assert statement.if_exists


class TestParseErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t GROUP",
            "FOO BAR",
            "SELECT a FROM t extra_garbage more",
            "INSERT INTO t VALUES",
            "CASE WHEN",
        ],
    )
    def test_invalid_sql_raises(self, sql):
        with pytest.raises(SqlParseError):
            parse_sql(sql)

    def test_trailing_semicolon_allowed(self):
        assert isinstance(parse_sql("SELECT a FROM t;"), ast.Select)
