"""Tests for CSV/JSON import and export."""

import pytest

from repro.engine.csvio import dump_csv, dump_json, infer_type, load_csv, load_json
from repro.engine.relation import Relation
from repro.engine.types import DataType, RelationSchema
from repro.errors import SchemaError

CSV_TEXT = """name,age,score,active,city
ann,30,1.5,true,EDI
bob,40,2.5,false,LDN
cat,,3.0,true,
"""


class TestInferType:
    def test_integers(self):
        assert infer_type(["1", "2", ""]) is DataType.INTEGER

    def test_floats(self):
        assert infer_type(["1.5", "2"]) is DataType.FLOAT

    def test_booleans(self):
        assert infer_type(["true", "false"]) is DataType.BOOLEAN

    def test_strings(self):
        assert infer_type(["abc", "1"]) is DataType.STRING

    def test_all_null_defaults_to_string(self):
        assert infer_type(["", None]) is DataType.STRING


class TestCsv:
    def test_load_infers_schema(self):
        relation = load_csv(CSV_TEXT, "people")
        assert relation.schema.attribute("age").dtype is DataType.INTEGER
        assert relation.schema.attribute("score").dtype is DataType.FLOAT
        assert relation.schema.attribute("active").dtype is DataType.BOOLEAN
        assert relation.schema.attribute("name").dtype is DataType.STRING
        assert len(relation) == 3

    def test_null_token_becomes_none(self):
        relation = load_csv(CSV_TEXT, "people")
        assert relation.value(2, "age") is None
        assert relation.value(2, "city") is None

    def test_load_without_inference(self):
        relation = load_csv(CSV_TEXT, "people", infer_types=False)
        assert relation.schema.attribute("age").dtype is DataType.STRING
        assert relation.value(0, "age") == "30"

    def test_load_with_explicit_schema(self):
        schema = RelationSchema.of("people", ["name", ("age", "int")])
        relation = load_csv(CSV_TEXT, "people", schema=schema)
        assert relation.attribute_names == ["name", "age"]

    def test_empty_csv_rejected(self):
        with pytest.raises(SchemaError):
            load_csv("name,age\n", "empty")

    def test_roundtrip(self, tmp_path):
        relation = load_csv(CSV_TEXT, "people")
        path = tmp_path / "out.csv"
        dump_csv(relation, path)
        reloaded = load_csv(path, "people")
        assert reloaded.to_list() == relation.to_list()

    def test_file_loading(self, tmp_path):
        path = tmp_path / "in.csv"
        path.write_text(CSV_TEXT)
        relation = load_csv(path, "people")
        assert len(relation) == 3


class TestJson:
    def test_roundtrip_preserves_schema_and_rows(self, tmp_path):
        relation = load_csv(CSV_TEXT, "people")
        path = tmp_path / "out.json"
        dump_json(relation, path)
        reloaded = load_json(path, "people")
        assert reloaded.to_list() == relation.to_list()
        assert reloaded.schema.attribute("age").dtype is DataType.INTEGER

    def test_roundtrip_from_text(self):
        relation = Relation.from_rows(
            RelationSchema.of("r", ["a", ("n", "int")]), [{"a": "x", "n": 1}]
        )
        text = dump_json(relation)
        reloaded = load_json(text, "r")
        assert reloaded.to_list() == [{"a": "x", "n": 1}]
