"""Tests for the SQL tokenizer."""

import pytest

from repro.engine.sql.lexer import Token, tokenize
from repro.errors import SqlLexError


def kinds(sql):
    return [(token.kind, token.value) for token in tokenize(sql) if token.kind != "eof"]


class TestTokenize:
    def test_keywords_are_lowercased(self):
        assert kinds("SELECT foo FROM bar")[0] == ("keyword", "select")

    def test_identifiers_keep_case(self):
        assert ("identifier", "FooBar") in kinds("SELECT FooBar FROM t")

    def test_string_literal_with_escaped_quote(self):
        tokens = kinds("SELECT 'it''s'")
        assert ("string", "it's") in tokens

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlLexError):
            tokenize("SELECT 'oops")

    def test_numbers_integer_float_exponent(self):
        tokens = kinds("SELECT 1, 2.5, 1e3")
        values = [value for kind, value in tokens if kind == "number"]
        assert values == ["1", "2.5", "1e3"]

    def test_two_char_operators(self):
        tokens = kinds("a <> b <= c >= d != e || f")
        operators = [value for kind, value in tokens if kind == "operator"]
        assert "<>" in operators and "<=" in operators and ">=" in operators
        assert "!=" in operators and "||" in operators

    def test_comments_are_skipped(self):
        tokens = kinds("SELECT a -- comment here\nFROM t")
        assert ("keyword", "from") in tokens
        assert all("comment" not in value for _kind, value in tokens)

    def test_quoted_identifier(self):
        tokens = kinds('SELECT "weird name" FROM t')
        assert ("identifier", "weird name") in tokens

    def test_unexpected_character(self):
        with pytest.raises(SqlLexError):
            tokenize("SELECT @foo")

    def test_eof_token_always_present(self):
        assert tokenize("")[-1].kind == "eof"

    def test_parameters(self):
        tokens = kinds("SELECT * FROM t WHERE a = ?")
        assert ("operator", "?") in tokens

    def test_token_helpers(self):
        token = Token("keyword", "select", 0)
        assert token.is_keyword("select", "insert")
        assert not token.is_operator("=")
