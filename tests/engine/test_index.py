"""Tests for composite hash indexes."""

import pytest

from repro.engine.index import HashIndex


@pytest.fixture
def index():
    idx = HashIndex(["country", "city"])
    idx.add(0, {"country": "UK", "city": "EDI"})
    idx.add(1, {"country": "UK", "city": "EDI"})
    idx.add(2, {"country": "US", "city": "NYC"})
    return idx


class TestHashIndex:
    def test_requires_attributes(self):
        with pytest.raises(ValueError):
            HashIndex([])

    def test_lookup(self, index):
        assert index.lookup("UK", "EDI") == {0, 1}
        assert index.lookup("US", "NYC") == {2}
        assert index.lookup("FR", "PAR") == set()

    def test_lookup_arity_checked(self, index):
        with pytest.raises(ValueError):
            index.lookup("UK")

    def test_remove(self, index):
        index.remove(0, {"country": "UK", "city": "EDI"})
        assert index.lookup("UK", "EDI") == {1}

    def test_remove_last_drops_bucket(self, index):
        index.remove(2, {"country": "US", "city": "NYC"})
        assert ("US", "NYC") not in index.keys()

    def test_remove_missing_is_noop(self, index):
        index.remove(42, {"country": "ZZ", "city": "ZZ"})
        assert len(index) == 2

    def test_update_moves_between_buckets(self, index):
        index.update(0, {"country": "UK", "city": "EDI"}, {"country": "UK", "city": "GLA"})
        assert index.lookup("UK", "EDI") == {1}
        assert index.lookup("UK", "GLA") == {0}

    def test_update_same_key_is_noop(self, index):
        index.update(0, {"country": "UK", "city": "EDI"}, {"country": "UK", "city": "EDI"})
        assert index.lookup("UK", "EDI") == {0, 1}

    def test_groups_and_len(self, index):
        groups = dict(index.groups())
        assert groups[("UK", "EDI")] == {0, 1}
        assert len(index) == 2

    def test_rebuild(self, index):
        index.rebuild([(5, {"country": "NL", "city": "AMS"})])
        assert index.lookup("NL", "AMS") == {5}
        assert len(index) == 1

    def test_null_values_are_indexable(self):
        idx = HashIndex(["a"])
        idx.add(0, {"a": None})
        assert idx.lookup(None) == {0}
