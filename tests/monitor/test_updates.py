"""Tests for update operations and the update log."""

import pytest

from repro.errors import MonitorError
from repro.monitor.updates import Update, UpdateKind, UpdateLog


class TestUpdate:
    def test_constructors(self):
        insert = Update.insert({"A": 1})
        delete = Update.delete(3)
        modify = Update.modify(2, {"A": 5})
        assert insert.kind is UpdateKind.INSERT and insert.row == {"A": 1}
        assert delete.kind is UpdateKind.DELETE and delete.tid == 3
        assert modify.kind is UpdateKind.MODIFY and modify.changes == {"A": 5}

    def test_validation(self):
        with pytest.raises(MonitorError):
            Update(kind=UpdateKind.INSERT)
        with pytest.raises(MonitorError):
            Update(kind=UpdateKind.DELETE)
        with pytest.raises(MonitorError):
            Update(kind=UpdateKind.MODIFY, tid=1, changes={})

    def test_to_dict(self):
        data = Update.modify(2, {"A": 5}).to_dict()
        assert data == {"kind": "modify", "row": None, "tid": 2, "changes": {"A": 5}}


class TestUpdateLog:
    def test_append_assigns_increasing_sequence(self):
        log = UpdateLog()
        first = log.append(Update.insert({"A": 1}), tid=0)
        second = log.append(Update.delete(0), tid=0)
        assert (first, second) == (0, 1)
        assert len(log) == 2

    def test_since(self):
        log = UpdateLog()
        log.append(Update.insert({"A": 1}), tid=0)
        log.append(Update.insert({"A": 2}), tid=1)
        log.append(Update.modify(1, {"A": 3}), tid=1)
        assert [seq for seq, _u, _t in log.since(1)] == [1, 2]

    def test_affected_tids_deduplicated_in_order(self):
        log = UpdateLog()
        log.append(Update.insert({"A": 1}), tid=5)
        log.append(Update.modify(5, {"A": 2}), tid=5)
        log.append(Update.delete(3), tid=3)
        assert log.affected_tids() == [5, 3]
