"""Tests for the data monitor: detection mode and repair (cleansed) mode."""

import pytest

from repro.core.satisfaction import violating_tids
from repro.datasets import generate_customers, paper_cfds
from repro.detection.detector import ErrorDetector
from repro.engine.database import Database
from repro.monitor.monitor import DataMonitor
from repro.monitor.updates import Update


@pytest.fixture
def clean_database(customer_cfds):
    database = Database()
    database.add_relation(generate_customers(60, seed=43))
    return database


@pytest.fixture
def monitor(clean_database, customer_cfds):
    return DataMonitor(clean_database, "customer", customer_cfds)


def violating_insert(relation):
    """A row that clashes with an existing UK postcode's street."""
    template = relation.get(0)
    row = dict(template)
    row["STR"] = "A Brand New Street"
    return row


class TestDetectionMode:
    def test_initially_clean(self, monitor):
        assert monitor.current_report().is_clean()
        assert monitor.summary()["mode"] == "detect"

    def test_insert_detected_not_repaired(self, monitor, clean_database):
        relation = clean_database.relation("customer")
        tid = monitor.apply(Update.insert(violating_insert(relation)))
        report = monitor.current_report()
        assert not report.is_clean()
        assert any(tid in violation.tids for violation in report.violations)
        assert monitor.repairs() == []

    def test_modify_and_delete_tracked(self, monitor, clean_database):
        monitor.apply(Update.modify(0, {"CNT": "XX"}))
        assert not monitor.current_report().is_clean()
        monitor.apply(Update.delete(0))
        assert monitor.current_report().is_clean()
        assert len(monitor.log) == 2

    def test_incremental_matches_batch_after_updates(self, monitor, clean_database, customer_cfds):
        relation = clean_database.relation("customer")
        monitor.apply(Update.insert(violating_insert(relation)))
        monitor.apply(Update.modify(1, {"CC": "99"}))
        batch = ErrorDetector(clean_database, use_sql=False).detect("customer", customer_cfds)
        assert monitor.current_report().vio() == batch.vio()

    def test_violations_involving(self, monitor, clean_database):
        relation = clean_database.relation("customer")
        tid = monitor.apply(Update.insert(violating_insert(relation)))
        assert monitor.violations_involving(tid)


class TestRepairMode:
    def test_batch_apply_triggers_incremental_repair(self, monitor, clean_database, customer_cfds):
        monitor.mark_cleansed()
        relation = clean_database.relation("customer")
        monitor.apply_batch([Update.insert(violating_insert(relation))])
        assert monitor.current_report().is_clean()
        assert len(monitor.repairs()) == 1
        assert not violating_tids(relation, customer_cfds)

    def test_repair_only_touches_updated_tuples(self, monitor, clean_database, customer_cfds):
        monitor.mark_cleansed()
        relation = clean_database.relation("customer")
        original = {tid: relation.get(tid) for tid in relation.tids()}
        new_tids = monitor.apply_batch([Update.insert(violating_insert(relation))])
        for tid, row in original.items():
            assert relation.get(tid) == row
        assert all(tid is not None for tid in new_tids)

    def test_mode_switching(self, monitor):
        monitor.mark_cleansed()
        assert monitor.summary()["mode"] == "repair"
        monitor.mark_dirty()
        assert monitor.summary()["mode"] == "detect"

    def test_delete_batch_in_repair_mode(self, monitor, clean_database):
        monitor.mark_cleansed()
        monitor.apply_batch([Update.delete(0)])
        assert monitor.current_report().is_clean()

    def test_summary_counts(self, monitor, clean_database):
        relation = clean_database.relation("customer")
        monitor.apply(Update.insert(violating_insert(relation)))
        summary = monitor.summary()
        assert summary["updates_applied"] == 1
        assert summary["current_violations"] >= 1
        assert summary["tuples_examined"] > 0


class TestBackendMirroring:
    def test_attached_backend_receives_every_update_as_delta(
        self, clean_database, customer_cfds
    ):
        from repro.backends import SqliteBackend

        backend = SqliteBackend()
        backend.add_relation(clean_database.relation("customer"))
        monitor = DataMonitor(
            clean_database, "customer", customer_cfds, backend=backend
        )
        relation = clean_database.relation("customer")
        tids = relation.tids()
        new_tid = monitor.apply(Update.insert(violating_insert(relation)))
        monitor.apply(Update.modify(tids[1], {"CNT": "Narnia"}))
        monitor.apply(Update.delete(tids[2]))
        # the backend copy tracked every change, tid for tid
        assert dict(backend.iter_rows("customer")) == dict(relation.rows())
        assert backend.get_row("customer", new_tid)["STR"] == "A Brand New Street"
        backend.close()

    def test_monitor_without_backend_keeps_seed_behaviour(self, monitor):
        assert monitor.backend is None
        assert monitor._detector.mirror is None
