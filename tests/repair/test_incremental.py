"""Tests for incremental repair (IncRepair)."""

import pytest

from repro.core.satisfaction import satisfies_all, violating_tids
from repro.datasets import generate_customers, paper_cfds
from repro.errors import RepairError
from repro.repair.incremental import IncrementalRepairer, remaining_dirty_tids
from repro.repair.repairer import BatchRepairer


@pytest.fixture
def cleansed_customers(customer_cfds):
    """A relation that already satisfies the paper's CFDs."""
    return generate_customers(80, seed=13)


class TestRepairUpdates:
    def test_only_updated_tuples_are_modified(self, cleansed_customers, customer_cfds):
        relation = cleansed_customers
        # Corrupt one tuple's country so it clashes with its country code group.
        relation.update(0, {"CNT": "XX"})
        repairer = IncrementalRepairer()
        repair = repairer.repair_updates(relation, customer_cfds, [0])
        assert repair.changed_tids() <= {0}
        repairer.verify_untouched(repair, protected_tids=set(relation.tids()) - {0})

    def test_updated_tuple_converges_to_existing_value(self, cleansed_customers, customer_cfds):
        relation = cleansed_customers
        original_country = relation.value(0, "CNT")
        relation.update(0, {"CNT": "XX"})
        repair = IncrementalRepairer().repair_updates(relation, customer_cfds, [0])
        assert repair.repaired.value(0, "CNT") == original_country
        assert satisfies_all(repair.repaired, customer_cfds)

    def test_clean_update_is_noop(self, cleansed_customers, customer_cfds):
        relation = cleansed_customers
        relation.update(0, {"NAME": "Renamed Person"})  # NAME is unconstrained
        repair = IncrementalRepairer().repair_updates(relation, customer_cfds, [0])
        assert repair.is_noop()

    def test_unknown_tids_are_ignored(self, cleansed_customers, customer_cfds):
        repair = IncrementalRepairer().repair_updates(cleansed_customers, customer_cfds, [9999])
        assert repair.is_noop()


class TestInsertAndRepair:
    def test_inserted_violating_row_is_fixed(self, cleansed_customers, customer_cfds):
        relation = cleansed_customers
        template = relation.get(0)
        bad_row = dict(template)
        bad_row["STR"] = "Completely Different Street"
        repairer = IncrementalRepairer()
        new_tids, repair = repairer.insert_and_repair(relation, customer_cfds, [bad_row])
        assert len(new_tids) == 1
        assert repair.changed_tids() <= set(new_tids)
        assert not remaining_dirty_tids(repair.repaired, customer_cfds)

    def test_multiple_inserts(self, cleansed_customers, customer_cfds):
        relation = cleansed_customers
        template = relation.get(0)
        rows = []
        for street in ("Street A", "Street B"):
            row = dict(template)
            row["STR"] = street
            rows.append(row)
        new_tids, repair = IncrementalRepairer().insert_and_repair(
            relation, customer_cfds, rows
        )
        assert len(new_tids) == 2
        assert repair.changed_tids() <= set(new_tids)
        assert satisfies_all(repair.repaired, customer_cfds)


class TestVerifyUntouched:
    def test_detects_protected_modifications(self, customer_relation, customer_cfds):
        repair = BatchRepairer().repair(customer_relation, customer_cfds)
        repairer = IncrementalRepairer()
        with pytest.raises(RepairError):
            repairer.verify_untouched(repair, protected_tids=repair.changed_tids())

    def test_passes_when_nothing_protected_changed(self, customer_relation, customer_cfds):
        repair = BatchRepairer().repair(customer_relation, customer_cfds)
        IncrementalRepairer().verify_untouched(repair, protected_tids=[999])


class TestIncrementalVsBatchAgreement:
    def test_both_restore_consistency(self, cleansed_customers, customer_cfds):
        relation = cleansed_customers
        relation.update(3, {"CITY": "WRONGCITY"})
        incremental = IncrementalRepairer().repair_updates(relation, customer_cfds, [3])
        batch = BatchRepairer().repair(relation, customer_cfds)
        assert satisfies_all(incremental.repaired, customer_cfds)
        assert satisfies_all(batch.repaired, customer_cfds)
        # The incremental repair touches at most the updated tuple; batch may
        # touch more (it is free to change the other side of the conflict).
        assert incremental.changed_tids() <= {3}
