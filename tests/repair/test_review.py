"""Tests for the repair review workflow (Fig. 5)."""

import pytest

from repro.errors import RepairError
from repro.repair.repairer import BatchRepairer
from repro.repair.review import RepairReview


@pytest.fixture
def review(customer_relation, customer_cfds):
    repair = BatchRepairer().repair(customer_relation, customer_cfds)
    return RepairReview(repair, customer_cfds)


class TestInspection:
    def test_modified_cells_and_tuples(self, review):
        assert review.modified_cells()
        assert review.modified_tuples()
        for change in review.modified_cells():
            assert change.tid in review.modified_tuples()

    def test_tuple_diff_shows_old_and_new(self, review):
        tid = review.modified_tuples()[0]
        diff = review.tuple_diff(tid)
        assert diff
        for attribute, (old, new) in diff.items():
            assert old != new

    def test_alternatives_for_modified_cell(self, review):
        change = next(c for c in review.modified_cells() if c.alternatives)
        alternatives = review.alternatives(change.tid, change.attribute)
        assert alternatives == list(change.alternatives)
        costs = [cost for _value, cost in alternatives]
        assert costs == sorted(costs)

    def test_alternatives_for_untouched_cell_rejected(self, review):
        with pytest.raises(RepairError):
            review.alternatives(2, "NAME")

    def test_summary_counts(self, review):
        summary = review.summary()
        assert summary["modified_cells"] == len(review.modified_cells())
        assert summary["overrides"] == 0 and summary["reverts"] == 0


class TestDecisions:
    def test_accept_and_accept_all(self, review):
        change = review.modified_cells()[0]
        review.accept(change.tid, change.attribute)
        assert (change.tid, change.attribute) not in review.pending_cells()
        review.accept_all()
        assert review.pending_cells() == []

    def test_accept_unmodified_cell_rejected(self, review):
        with pytest.raises(RepairError):
            review.accept(2, "NAME")

    def test_override_applies_value_and_reports_conflicts(self, review):
        change = review.modified_cells()[0]
        conflicts = review.override(change.tid, change.attribute, "Custom Value")
        assert review.working.value(change.tid, change.attribute) == "Custom Value"
        assert isinstance(conflicts, list)
        assert review.summary()["overrides"] == 1

    def test_revert_restores_original_and_reintroduces_conflict(self, review):
        # Reverting the repaired street of tuple 0 brings back the phi2 conflict.
        street_changes = [c for c in review.modified_cells() if c.attribute == "STR"]
        if not street_changes:
            pytest.skip("repair chose to fix the other tuple")
        change = street_changes[0]
        conflicts = review.revert(change.tid, change.attribute)
        assert review.working.value(change.tid, change.attribute) == change.old_value
        assert any(note.kind == "multi" for note in conflicts)

    def test_finalise_returns_independent_copy(self, review):
        final = review.finalise()
        change = review.modified_cells()[0]
        final.update(change.tid, {change.attribute: "Scratch"})
        assert review.working.value(change.tid, change.attribute) != "Scratch"
