"""Unit tests for the repair data sources and their generated plans.

The oracle-parity property (`test_resident_parity.py`) and the forbidden-read
pins (`test_resident_pins.py`) cover the end-to-end contract; these tests pin
the moving parts in isolation — the new `value_freq`/`group_stats`/`row_fetch`
plan builders, the closure bookkeeping, the tie-break ordering of the
aggregate frequency path, and the per-dtype decode on the way back.
"""

from collections import Counter

import pytest

from repro.backends.sqlite import SqliteBackend
from repro.core.cfd import CFD
from repro.core.parser import parse_cfd
from repro.core.pattern import PatternTuple
from repro.detection.sqlgen import DetectionSqlGenerator
from repro.engine.relation import Relation
from repro.engine.types import AttributeDef, DataType, RelationSchema
from repro.errors import DetectionError
from repro.repair.repairer import BatchRepairer
from repro.repair.source import (
    BackendRepairSource,
    NativeRepairSource,
    RepairDataSource,
    native_column_frequencies,
)


def _schema():
    return RelationSchema.of("r", ["A", "B", "C"])


def _relation(rows):
    return Relation.from_rows(_schema(), rows)


def _sqlite_with(rows, **options):
    backend = SqliteBackend(**options)
    backend.add_relation(_relation(rows))
    return backend


class TestProtocol:
    def test_base_source_is_abstract(self):
        source = RepairDataSource()
        for call in (
            source.attribute_names,
            lambda: source.load([]),
            source.original,
            source.column_frequencies,
        ):
            with pytest.raises(NotImplementedError):
                call()
        # the hooks are optional no-ops
        source.begin_round(None)
        source.note_change(None, 0, "A")

    def test_native_source_isolates_the_original(self):
        relation = _relation([{"A": "a", "B": "x", "C": "1"}])
        source = NativeRepairSource(relation)
        working = source.load([])
        working.update(0, {"B": "changed"})
        assert source.original() is relation
        assert relation.value(0, "B") == "x"
        assert source.attribute_names() == ["A", "B", "C"]

    def test_native_column_frequencies_skip_nulls(self):
        relation = _relation(
            [{"A": "a", "B": None, "C": "1"}, {"A": "a", "B": "x", "C": None}]
        )
        frequencies = native_column_frequencies(relation)
        assert frequencies["A"] == Counter({"a": 2})
        assert frequencies["B"] == Counter({"x": 1})
        assert frequencies["C"] == Counter({"1": 1})


class TestPlanBuilders:
    def test_value_freq_query_shape_and_cache(self):
        generator = DetectionSqlGenerator(_schema())
        query = generator.value_freq_query("A")
        assert query.kind == "value_freq"
        assert "GROUP BY" in query.sql and "MIN(t._tid)" in query.sql
        assert "IS NOT NULL" in query.sql
        assert generator.value_freq_query("A") is query  # plan cache hit

    def test_value_freq_query_rejects_unknown_attribute(self):
        generator = DetectionSqlGenerator(_schema())
        with pytest.raises(DetectionError, match="unknown attribute"):
            generator.value_freq_query("NOPE")

    def test_group_stats_query_shape(self):
        generator = DetectionSqlGenerator(_schema())
        cfd = parse_cfd("r: [A=_, B=_] -> [C=_]")
        query = generator.group_stats_query(cfd, "C", 2)
        assert query.kind == "group_stats"
        assert "COUNT(*) AS member_count" in query.sql
        assert "COUNT(DISTINCT" in query.sql
        assert "lhs_A" in query.sql and "lhs_B" in query.sql

    def test_group_stats_query_validation(self):
        generator = DetectionSqlGenerator(_schema())
        cfd = parse_cfd("r: [A=_] -> [B=_]")
        with pytest.raises(ValueError, match="at least 1"):
            generator.group_stats_query(cfd, "B", 0)
        constant_only = CFD(
            relation="r", lhs=(), rhs=("B",), patterns=(PatternTuple.of({"B": "x"}),)
        )
        with pytest.raises(ValueError, match="non-empty LHS"):
            generator.group_stats_query(constant_only, "B", 1)

    def test_row_fetch_query_shape_and_validation(self):
        generator = DetectionSqlGenerator(_schema())
        query = generator.row_fetch_query(3)
        assert query.kind == "row_fetch"
        assert query.sql.count("?") == 3
        assert "t._tid AS tid" in query.sql
        with pytest.raises(ValueError, match="at least 1"):
            generator.row_fetch_query(0)

    def test_group_stats_plans_chunk_to_the_parameter_budget(self):
        backend = _sqlite_with([], max_parameters=8)
        generator = DetectionSqlGenerator(
            backend.schema("r"), dialect=backend.dialect
        )
        cfd = parse_cfd("r: [A=_, B=_] -> [C=_]")
        keys = [(f"a{i}", f"b{i}") for i in range(9)]
        plans = generator.group_stats_plans(cfd, "C", keys)
        assert len(plans) > 1
        for plan in plans:
            assert len(plan.parameters) <= 8
        backend.close()

    def test_row_fetch_plans_pad_with_the_last_tid(self):
        backend = _sqlite_with(
            [{"A": str(i), "B": "x", "C": "y"} for i in range(5)], max_parameters=4
        )
        generator = DetectionSqlGenerator(
            backend.schema("r"), dialect=backend.dialect
        )
        plans = generator.row_fetch_plans([0, 1, 2, 3, 4])
        assert len(plans) == 2
        fetched = [row["tid"] for plan in plans for row in backend.execute(plan.sql, plan.parameters)]
        # padding repeats the final tid; callers dedup by tid
        assert sorted(set(fetched)) == [0, 1, 2, 3, 4]
        backend.close()


class TestBackendSource:
    CFD = "r: [A=_] -> [B=_]"

    def test_load_fetches_only_the_dirty_region(self):
        backend = _sqlite_with(
            [
                {"A": "a", "B": "x", "C": "1"},  # violates with t1
                {"A": "a", "B": "y", "C": "1"},
                {"A": "b", "B": "z", "C": "1"},  # clean group, never fetched
                {"A": "b", "B": "z", "C": "1"},
            ]
        )
        source = BackendRepairSource(backend, "r")
        working = source.load([parse_cfd(self.CFD)])
        assert sorted(tid for tid, _ in working.rows()) == [0, 1]
        assert source.stats["rows_fetched"] == 2
        assert source.last_sql  # SQL really ran
        backend.close()

    def test_original_requires_load(self):
        backend = _sqlite_with([])
        source = BackendRepairSource(backend, "r")
        with pytest.raises(RuntimeError, match="load"):
            source.original()
        with pytest.raises(RuntimeError, match="load"):
            source.column_frequencies()
        backend.close()

    def test_column_frequencies_break_ties_like_the_native_counter(self):
        rows = [
            {"A": "tie2", "B": "x", "C": None},
            {"A": "tie1", "B": "x", "C": None},
            {"A": "tie2", "B": None, "C": None},
            {"A": "tie1", "B": "y", "C": None},
        ]
        backend = _sqlite_with(rows)
        source = BackendRepairSource(backend, "r")
        source.load([parse_cfd(self.CFD)])
        resident = source.column_frequencies()
        native = native_column_frequencies(_relation(rows))
        for attribute in ("A", "B", "C"):
            assert resident[attribute] == native[attribute]
            # most_common order (the candidate ranking) must match too
            assert resident[attribute].most_common() == native[attribute].most_common()
        backend.close()

    def test_note_change_skips_null_and_inapplicable_keys(self):
        backend = _sqlite_with(
            [{"A": "a", "B": "x", "C": "1"}, {"A": "a", "B": "y", "C": "1"}]
        )
        source = BackendRepairSource(backend, "r")
        working = source.load([parse_cfd("r: [A='a'] -> [B=_]")])
        working.update(0, {"A": None})
        source.note_change(working, 0, "A")
        assert not source._pending  # NULL LHS belongs to no group
        working.update(0, {"A": "other"})
        source.note_change(working, 0, "A")
        assert not source._pending  # no pattern covers A='other'
        working.update(1, {"B": "z"})
        source.note_change(working, 1, "B")
        assert source._pending  # RHS change on an applicable key queues
        source.note_change(working, 1, "C")  # attribute outside the sub
        assert len(source._pending) == 1
        backend.close()

    def test_begin_round_expands_only_underfetched_groups(self):
        backend = _sqlite_with(
            [
                {"A": "a", "B": "x", "C": "1"},  # dirty pair, fetched by load
                {"A": "a", "B": "y", "C": "1"},
                {"A": "b", "B": "z", "C": "1"},  # clean group with 2 members
                {"A": "b", "B": "z", "C": "1"},
            ]
        )
        source = BackendRepairSource(backend, "r")
        working = source.load([parse_cfd(self.CFD)])
        # the planner moves t0 into the unfetched group 'b'
        working.update(0, {"A": "b"})
        source.note_change(working, 0, "A")
        # and touches the fully-fetched group 'a' (dismissed by count)
        working.update(1, {"B": "w"})
        source.note_change(working, 1, "B")
        source.begin_round(working)
        assert sorted(tid for tid, _ in working.rows()) == [0, 1, 2, 3]
        assert source.stats["groups_checked"] == 2
        assert source.stats["groups_expanded"] == 1
        # a second round with nothing pending is free
        before = list(source.last_sql)
        source.begin_round(working)
        assert source.last_sql == before
        backend.close()

    def test_boolean_columns_decode_on_the_way_back(self):
        schema = RelationSchema(
            "flags",
            [
                AttributeDef("A", DataType.STRING),
                AttributeDef("OK", DataType.BOOLEAN),
            ],
        )
        rows = [
            {"A": "g1", "OK": True},
            {"A": "g1", "OK": False},  # violates [A] -> [OK]
            {"A": "g2", "OK": True},
        ]
        relation = Relation.from_rows(schema, rows)
        backend = SqliteBackend()
        backend.add_relation(relation)
        cfds = [parse_cfd("flags: [A=_] -> [OK=_]")]
        native = BatchRepairer().repair(relation, cfds)
        source = BackendRepairSource(backend, "flags")
        resident = BatchRepairer().repair_with_source(source, cfds)
        assert [
            (c.tid, c.attribute, c.old_value, c.new_value) for c in resident.changes
        ] == [(c.tid, c.attribute, c.old_value, c.new_value) for c in native.changes]
        for change in resident.changes:
            assert isinstance(change.new_value, bool)
        assert source.column_frequencies()["OK"] == Counter({True: 2, False: 1})
        backend.close()
