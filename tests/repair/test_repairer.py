"""Tests for the batch repair algorithm."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parser import parse_cfd
from repro.core.satisfaction import satisfies_all, violating_tids
from repro.datasets import generate_customers, inject_noise, paper_cfds
from repro.engine.relation import Relation
from repro.engine.types import RelationSchema
from repro.repair.cost import CostModel
from repro.repair.repairer import BatchRepairer, repair_quality


class TestRepairExample:
    def test_repair_removes_all_violations(self, customer_relation, customer_cfds):
        repair = BatchRepairer().repair(customer_relation, customer_cfds)
        assert repair.residual_violations == 0
        assert satisfies_all(repair.repaired, customer_cfds)

    def test_original_relation_untouched(self, customer_relation, customer_cfds):
        before = customer_relation.to_list()
        BatchRepairer().repair(customer_relation, customer_cfds)
        assert customer_relation.to_list() == before

    def test_changes_are_recorded_with_provenance(self, customer_relation, customer_cfds):
        repair = BatchRepairer().repair(customer_relation, customer_cfds)
        assert repair.changes
        for change in repair.changes:
            assert change.old_value != change.new_value
            assert change.reason  # the CFD that prompted the change
            assert change.cost >= 0
        assert repair.total_cost > 0

    def test_multi_tuple_violation_resolved_to_shared_value(
        self, customer_relation, customer_cfds
    ):
        repair = BatchRepairer().repair(customer_relation, customer_cfds)
        # Mike and Rick shared zip EH4 1DT with different streets; afterwards
        # they must agree.
        assert repair.repaired.value(0, "STR") == repair.repaired.value(1, "STR")

    def test_constant_violation_resolved(self, customer_relation, customer_cfds):
        repair = BatchRepairer().repair(customer_relation, customer_cfds)
        # Anna (CC=44, CNT=NL) must now satisfy phi4/phi3 one way or another.
        row = repair.repaired.get(4)
        assert not violating_tids(repair.repaired, customer_cfds)
        assert row["CNT"] == "UK" or row["CC"] != "44"

    def test_changed_cells_and_changes_for(self, customer_relation, customer_cfds):
        repair = BatchRepairer().repair(customer_relation, customer_cfds)
        for (tid, attribute), change in repair.changed_cells.items():
            assert change.tid == tid and change.attribute == attribute
        assert repair.changes_for(4) or repair.changes_for(0) or repair.changes_for(1)

    def test_clean_data_is_a_noop(self, customer_cfds):
        clean = generate_customers(60, seed=2)
        repair = BatchRepairer().repair(clean, customer_cfds)
        assert repair.is_noop()
        assert repair.total_cost == 0

    def test_to_dict(self, customer_relation, customer_cfds):
        repair = BatchRepairer().repair(customer_relation, customer_cfds)
        data = repair.to_dict()
        assert data["changes"] and "total_cost" in data


class TestCostModelInfluence:
    def test_protected_cell_is_not_chosen(self, customer_relation, customer_cfds):
        model = CostModel.uniform()
        # Declare Rick's street authoritative: the merge must move Mike's street.
        model.protect_cell(1, "STR")
        repair = BatchRepairer(cost_model=model).repair(customer_relation, customer_cfds)
        assert repair.repaired.value(1, "STR") == "Crichton St"
        assert repair.repaired.value(0, "STR") == "Crichton St"

    def test_attribute_weights_steer_constant_fix(self, customer_relation):
        # Only phi4 is enforced.  Making CNT expensive to change means the
        # cheaper fix for Anna is to change CC (breaking the pattern) rather
        # than setting CNT='UK'.
        phi4 = parse_cfd("customer: [CC='44'] -> [CNT='UK']", name="phi4")
        model = CostModel(attribute_weights={"CNT": 50.0})
        repair = BatchRepairer(cost_model=model).repair(customer_relation, [phi4])
        row = repair.repaired.get(4)
        assert row["CNT"] == "NL"
        assert row["CC"] != "44"
        assert satisfies_all(repair.repaired, [phi4])

    def test_default_weights_prefer_rhs_constant_fix(self, customer_relation):
        phi4 = parse_cfd("customer: [CC='44'] -> [CNT='UK']", name="phi4")
        repair = BatchRepairer().repair(customer_relation, [phi4])
        assert repair.repaired.get(4)["CNT"] == "UK"


class TestRepairQualityOnNoise:
    def test_swap_noise_mostly_recovered(self, customer_cfds):
        clean = generate_customers(200, seed=21)
        noise = inject_noise(clean, rate=0.03, seed=22, attributes=["CNT", "CITY", "CC"],
                             kinds=("swap",))
        repair = BatchRepairer().repair(noise.dirty, customer_cfds)
        quality = repair_quality(repair, clean, noise.dirty)
        assert quality["precision"] >= 0.5
        assert quality["recall"] >= 0.3
        assert 0.0 <= quality["f1"] <= 1.0

    def test_repair_reduces_violations_at_higher_noise(self, customer_cfds):
        clean = generate_customers(150, seed=31)
        noise = inject_noise(clean, rate=0.08, seed=32,
                             attributes=["CNT", "CITY", "STR", "CC"])
        before = len(violating_tids(noise.dirty, customer_cfds))
        repair = BatchRepairer().repair(noise.dirty, customer_cfds)
        after = len(violating_tids(repair.repaired, customer_cfds))
        assert after < before

    def test_quality_metrics_with_no_noise(self, customer_cfds):
        clean = generate_customers(50, seed=41)
        repair = BatchRepairer().repair(clean, customer_cfds)
        quality = repair_quality(repair, clean)
        assert quality["precision"] == 1.0
        assert quality["recall"] == 1.0
        assert quality["corrupted_cells"] == 0


class TestRestrictedRepair:
    def test_restrict_to_tids_only_changes_those_tuples(self, customer_relation, customer_cfds):
        repairer = BatchRepairer(restrict_to_tids=[4])
        repair = repairer.repair(customer_relation, customer_cfds)
        assert repair.changed_tids() <= {4}

    def test_restricted_repair_skips_unrelated_violations(self, customer_relation, customer_cfds):
        repairer = BatchRepairer(restrict_to_tids=[2])  # Joe is clean
        repair = repairer.repair(customer_relation, customer_cfds)
        assert repair.is_noop()


class TestTermination:
    def test_iteration_cap_respected(self, customer_relation, customer_cfds):
        repair = BatchRepairer(max_iterations=1).repair(customer_relation, customer_cfds)
        assert repair.iterations == 1

    small_value = st.sampled_from(["a", "b", "c"])

    @given(
        rows=st.lists(
            st.fixed_dictionaries(
                {"CNT": small_value, "ZIP": small_value, "STR": small_value, "CC": small_value}
            ),
            min_size=2,
            max_size=10,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_property_repair_terminates_and_reduces_violations(self, rows):
        schema = RelationSchema.of("customer", ["CNT", "ZIP", "STR", "CC"])
        relation = Relation.from_rows(schema, rows)
        cfds = [
            parse_cfd("customer: [CNT=_, ZIP=_] -> [STR=_]"),
            parse_cfd("customer: [CC='a'] -> [CNT='b']"),
        ]
        before = len(violating_tids(relation, cfds))
        repair = BatchRepairer(max_iterations=15).repair(relation, cfds)
        after = len(violating_tids(repair.repaired, cfds))
        assert after <= before
        if repair.residual_violations == 0:
            assert after == 0
