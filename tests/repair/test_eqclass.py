"""Tests for cell equivalence classes."""

import pytest

from repro.errors import RepairError
from repro.repair.cost import CostModel
from repro.repair.eqclass import EquivalenceClasses


@pytest.fixture
def classes():
    eq = EquivalenceClasses()
    eq.add((0, "STR"))
    eq.add((1, "STR"))
    eq.add((2, "STR"))
    return eq


class TestUnionFind:
    def test_singletons_initially(self, classes):
        assert len(classes) == 3
        assert not classes.together((0, "STR"), (1, "STR"))

    def test_union_merges(self, classes):
        classes.union((0, "STR"), (1, "STR"))
        assert classes.together((0, "STR"), (1, "STR"))
        assert len(classes) == 2

    def test_union_is_transitive(self, classes):
        classes.union((0, "STR"), (1, "STR"))
        classes.union((1, "STR"), (2, "STR"))
        assert classes.together((0, "STR"), (2, "STR"))
        assert set(classes.members((0, "STR"))) == {(0, "STR"), (1, "STR"), (2, "STR")}

    def test_find_adds_unknown_cells(self):
        eq = EquivalenceClasses()
        root = eq.find((7, "A"))
        assert root == (7, "A")
        assert (7, "A") in eq

    def test_classes_enumeration(self, classes):
        classes.union((0, "STR"), (1, "STR"))
        groups = classes.classes()
        assert sorted(len(group) for group in groups) == [1, 2]


class TestPinning:
    def test_pin_and_read(self, classes):
        classes.pin((0, "STR"), "High St")
        assert classes.pinned_value((0, "STR")) == "High St"
        assert classes.is_pinned((0, "STR"))
        assert not classes.is_pinned((1, "STR"))

    def test_pin_propagates_through_union(self, classes):
        classes.pin((0, "STR"), "High St")
        classes.union((0, "STR"), (1, "STR"))
        assert classes.pinned_value((1, "STR")) == "High St"

    def test_conflicting_pin_rejected(self, classes):
        classes.pin((0, "STR"), "High St")
        with pytest.raises(RepairError):
            classes.pin((0, "STR"), "Low Rd")

    def test_conflicting_union_rejected(self, classes):
        classes.pin((0, "STR"), "High St")
        classes.pin((1, "STR"), "Low Rd")
        with pytest.raises(RepairError):
            classes.union((0, "STR"), (1, "STR"))

    def test_same_pin_union_allowed(self, classes):
        classes.pin((0, "STR"), "High St")
        classes.pin((1, "STR"), "High St")
        classes.union((0, "STR"), (1, "STR"))
        assert classes.pinned_value((0, "STR")) == "High St"


class TestChooseValue:
    def test_majority_value_wins_with_uniform_weights(self, classes):
        classes.union((0, "STR"), (1, "STR"))
        classes.union((1, "STR"), (2, "STR"))
        values = {(0, "STR"): "High St", (1, "STR"): "High St", (2, "STR"): "Low Rd"}
        best, cost, ranked = classes.choose_value((0, "STR"), values, CostModel.uniform())
        assert best == "High St"
        assert ranked[0][0] == "High St"
        assert cost <= ranked[-1][1]

    def test_weights_can_flip_choice(self, classes):
        classes.union((0, "STR"), (1, "STR"))
        classes.union((1, "STR"), (2, "STR"))
        values = {(0, "STR"): "High St", (1, "STR"): "High St", (2, "STR"): "Low Rd"}
        model = CostModel.uniform()
        model.protect_cell(2, "STR")  # the minority cell is untouchable
        best, _cost, _ranked = classes.choose_value((0, "STR"), values, model)
        assert best == "Low Rd"

    def test_pinned_constant_wins_even_if_costlier(self, classes):
        classes.union((0, "STR"), (1, "STR"))
        classes.pin((0, "STR"), "Official Name")
        values = {(0, "STR"): "High St", (1, "STR"): "High St"}
        best, _cost, ranked = classes.choose_value((0, "STR"), values, CostModel.uniform())
        assert best == "Official Name"
        assert any(value == "Official Name" for value, _ in ranked)

    def test_extra_candidates_are_ranked(self, classes):
        values = {(0, "STR"): "High St"}
        _best, _cost, ranked = classes.choose_value(
            (0, "STR"), values, CostModel.uniform(), candidates=["Other St"]
        )
        assert {value for value, _ in ranked} == {"High St", "Other St"}

    def test_no_candidates_raises(self):
        eq = EquivalenceClasses()
        eq.add((0, "A"))
        with pytest.raises(RepairError):
            eq.choose_value((0, "A"), {(0, "A"): None}, CostModel.uniform())
