"""Adaptive fetching in the backend-resident repair source.

Two mechanisms keep the closure's row traffic proportional to what the
planner actually needs:

* **majority pruning** — a re-queued group whose combined value set
  (working values of fetched members plus the backend ``majority_value``
  histogram of unfetched ones) is already unanimous cannot violate, so
  its members are never shipped;
* **threshold fallback** — when the dirty region (or a closure round's
  cumulative fetches) would cross ``fetch_threshold`` of the relation,
  the source switches to one keyset-paged full scan instead of paying
  per-key ``IN`` restrictions for nearly every tuple (the blanket-group
  pathology of ``[CC] -> [CNT]`` noise).

Both must leave the planner's decisions bit-identical to the native
oracle; ``test_resident_parity.py`` pins the default path, here the
fallback path gets the same treatment plus unit coverage of the stats,
counters and configuration validation.
"""

from collections import Counter

import pytest

from repro import Semandaq, SemandaqConfig
from repro.backends.sqlite import SqliteBackend
from repro.core.parser import parse_cfd
from repro.datasets import generate_customers, inject_noise, paper_cfds
from repro.engine.relation import Relation
from repro.engine.types import RelationSchema
from repro.errors import ConfigurationError
from repro.obs.telemetry import Telemetry
from repro.repair.repairer import BatchRepairer
from repro.repair.source import BackendRepairSource


def _schema():
    return RelationSchema.of("r", ["A", "B"])


def _relation(rows):
    return Relation.from_rows(_schema(), rows)


def _sqlite_with(rows, **options):
    backend = SqliteBackend(**options)
    backend.add_relation(_relation(rows))
    return backend


CFD_AB = "r: [A=_] -> [B=_]"

#: one violating pair in group g1, one unanimous unfetched group g2
PRUNABLE_ROWS = [
    {"A": "g1", "B": "x"},
    {"A": "g1", "B": "y"},
    {"A": "g2", "B": "z"},
    {"A": "g2", "B": "z"},
    {"A": "g2", "B": "z"},
]

#: every row is dirty: one group, alternating RHS values
BLANKET_ROWS = [{"A": "g", "B": "x" if i % 2 else "y"} for i in range(10)]


class TestMajorityPruning:
    def test_unanimous_group_is_pruned_without_fetching(self):
        backend = _sqlite_with(PRUNABLE_ROWS)
        try:
            telemetry = Telemetry(enabled=True)
            source = BackendRepairSource(backend, "r", telemetry=telemetry)
            cfds = [parse_cfd(CFD_AB)]
            working = source.load(cfds)
            assert sorted(tid for tid, _row in working.rows()) == [0, 1]
            # the planner moves tid 1 into g2, agreeing with its majority
            working.update(1, {"A": "g2", "B": "z"})
            source.note_change(working, 1, "A")
            source.begin_round(working)
            assert source.stats["groups_pruned"] == 1
            assert source.stats["groups_expanded"] == 0
            assert source.stats["rows_fetched"] == 2  # nothing shipped
            assert 2 not in working
            snapshot = telemetry.metrics.snapshot()
            assert snapshot["counters"]["repair.closure_pruned"] == 1
        finally:
            backend.close()

    def test_disagreeing_group_is_still_expanded(self):
        backend = _sqlite_with(PRUNABLE_ROWS)
        try:
            source = BackendRepairSource(backend, "r")
            working = source.load([parse_cfd(CFD_AB)])
            # the moved tuple disagrees with g2's stored majority
            working.update(1, {"A": "g2", "B": "w"})
            source.note_change(working, 1, "A")
            source.begin_round(working)
            assert source.stats["groups_pruned"] == 0
            assert source.stats["groups_expanded"] == 1
            assert sorted(tid for tid, _row in working.rows()) == [0, 1, 2, 3, 4]
        finally:
            backend.close()


class TestThresholdFallback:
    def test_blanket_dirty_region_ships_back_in_pages(self):
        backend = _sqlite_with(BLANKET_ROWS)
        try:
            telemetry = Telemetry(enabled=True)
            source = BackendRepairSource(
                backend, "r", telemetry=telemetry, fetch_threshold=0.5
            )
            working = source.load([parse_cfd(CFD_AB)])
            assert source.stats["fallback_shipback"] == 1
            assert len(working) == len(BLANKET_ROWS)
            assert source.fetch_fraction() == 1.0
            snapshot = telemetry.metrics.snapshot()
            assert snapshot["counters"]["repair.fallback_shipback"] == 1
            assert snapshot["counters"]["repair.rows_fetched"] == len(BLANKET_ROWS)
            # the closure hooks are no-ops once the relation is complete
            working.update(0, {"B": "x"})
            source.note_change(working, 0, "B")
            statements_before = len(source.last_sql)
            source.begin_round(working)
            assert len(source.last_sql) == statements_before
        finally:
            backend.close()

    def test_none_threshold_keeps_the_pure_resident_path(self):
        backend = _sqlite_with(BLANKET_ROWS)
        try:
            source = BackendRepairSource(backend, "r", fetch_threshold=None)
            working = source.load([parse_cfd(CFD_AB)])
            assert source.stats["fallback_shipback"] == 0
            # every row is dirty, so the dirty fetch materialises them all
            assert len(working) == len(BLANKET_ROWS)
        finally:
            backend.close()

    def test_sparse_dirty_region_never_falls_back(self):
        backend = _sqlite_with(PRUNABLE_ROWS)
        try:
            source = BackendRepairSource(backend, "r", fetch_threshold=0.5)
            working = source.load([parse_cfd(CFD_AB)])
            assert source.stats["fallback_shipback"] == 0
            assert len(working) == 2
            assert source.fetch_fraction() == pytest.approx(2 / 5)
        finally:
            backend.close()

    def test_fallback_repair_matches_the_native_oracle(self):
        relation = _relation(BLANKET_ROWS)
        cfds = [parse_cfd(CFD_AB)]
        native = BatchRepairer(max_iterations=12).repair(relation, cfds)
        backend = SqliteBackend()
        try:
            backend.add_relation(relation.copy())
            source = BackendRepairSource(backend, "r", fetch_threshold=0.5)
            resident = BatchRepairer(max_iterations=12).repair_with_source(
                source, cfds
            )
            assert source.stats["fallback_shipback"] == 1
            assert [
                (c.tid, c.attribute, c.old_value, c.new_value)
                for c in resident.changes
            ] == [
                (c.tid, c.attribute, c.old_value, c.new_value)
                for c in native.changes
            ]
            assert resident.total_cost == pytest.approx(native.total_cost)
            assert resident.residual_violations == native.residual_violations
        finally:
            backend.close()

    def test_fetch_fraction_is_zero_before_load(self):
        backend = _sqlite_with(PRUNABLE_ROWS)
        try:
            source = BackendRepairSource(backend, "r")
            assert source.fetch_fraction() == 0.0
        finally:
            backend.close()


class TestSystemIntegration:
    def _blanket_system(self, **config):
        system = Semandaq(config=SemandaqConfig(backend="sqlite", **config))
        clean = generate_customers(60, seed=77)
        dirty = inject_noise(clean, rate=0.1, seed=78, attributes=["CNT"]).dirty
        system.register_relation(dirty)
        system.add_cfds(paper_cfds())
        return system

    def test_blanket_noise_engages_the_fallback_through_the_facade(self):
        system = self._blanket_system(telemetry=True)
        try:
            before = system.detect("customer").total_violations()
            system.clean("customer")
            after = system.detect("customer").total_violations()
            assert after < before
            counters = system.metrics()["counters"]
            # [CC] -> [CNT] noise dirties whole countries: the adaptive
            # source must either ship back or have stayed under threshold
            assert (
                counters.get("repair.fallback_shipback", 0) == 1
                or counters["repair.rows_fetched"] <= 0.5 * 60
            )
            assert "repair.fetch_fraction" in counters
            assert counters["repair.rows_fetched"] > 0
        finally:
            system.close()

    def test_threshold_validation(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(
                ConfigurationError, match=r"repair_fetch_threshold"
            ):
                SemandaqConfig(repair_fetch_threshold=bad).validate()
        SemandaqConfig(repair_fetch_threshold=None).validate()
        SemandaqConfig(repair_fetch_threshold=1.0).validate()

    def test_audit_source_validation(self):
        with pytest.raises(ConfigurationError, match="unknown audit_source"):
            SemandaqConfig(audit_source="resident").validate()
        SemandaqConfig(audit_source="native").validate()
