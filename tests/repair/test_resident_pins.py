"""Zero working-store reads for backend-resident repair.

The detection pushdown is pinned by wrapping the storage backend in
:class:`~tests.doubles.ForbiddenReadBackend` (see
``tests/detection/test_batch_resident.py``).  These tests extend the same
contract to the repair pipeline: with ``repair_source="auto"`` the whole
``clean()`` walk — detect, repair planning, apply, post-detect — must never
ship rows out of the backend (``to_relation`` / ``get_row`` / ``iter_rows``),
on both backends.

On SQLite the pin goes further: the working :class:`Relation` itself is
replaced by a :class:`~tests.doubles.ForbiddenRelation` while ``repair()``
plans, proving the planner reads *only* the backend (the embedded memory
backend shares the working database — its executor legitimately reads the
rows inside the store — so the relation-level pin is SQLite-only).
"""

import pytest

from repro import Semandaq, SemandaqConfig
from repro.datasets import generate_customers, inject_noise, paper_cfds
from tests.doubles import ForbiddenReadBackend, ForbiddenRelation

BACKENDS = ["memory", "sqlite"]


def _make_system(backend_name):
    system = Semandaq(config=SemandaqConfig(backend=backend_name))
    clean = generate_customers(60, seed=401)
    dirty = inject_noise(
        clean, rate=0.08, seed=402, attributes=["CITY", "STR", "CNT"]
    ).dirty
    system.register_relation(dirty)
    system.add_cfds(paper_cfds())
    return system


def _pin_backend(system):
    wrapped = ForbiddenReadBackend(system.backend)
    system.backend = wrapped
    system.detector.backend = wrapped
    return wrapped


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestResidentRepairPins:
    def test_pin_is_live(self, backend_name):
        system = _make_system(backend_name)
        wrapped = _pin_backend(system)
        with pytest.raises(AssertionError, match="read the working store"):
            wrapped.to_relation("customer")
        system.close()

    def test_clean_ships_no_rows_out_of_the_backend(self, backend_name):
        system = _make_system(backend_name)
        _pin_backend(system)
        summary = system.clean("customer")
        assert summary["cells_changed"] > 0
        assert summary["violations_after"] <= summary["violations_before"]
        assert system._repairs["customer"].source == "backend"
        system.close()

    def test_apply_repair_ships_no_rows_out_of_the_backend(self, backend_name):
        system = _make_system(backend_name)
        _pin_backend(system)
        before = system.detect("customer").total_violations()
        repair = system.repair("customer")
        assert repair.source == "backend"
        applied = system.apply_repair("customer")
        after = system.detect("customer").total_violations()
        assert after <= before
        # the replacement is a full relation, not the planner's partial view
        assert len(applied) == 60
        system.close()


class TestPlannerNeverTouchesTheWorkingRelation:
    def test_repair_plans_from_the_backend_alone(self):
        system = _make_system("sqlite")
        _pin_backend(system)
        real = system.database.relation("customer")
        system.database._relations["customer"] = ForbiddenRelation("customer")
        try:
            repair = system.repair("customer")
        finally:
            system.database._relations["customer"] = real
        assert repair.source == "backend"
        assert repair.changes
        # with the real relation back, the planned repair applies cleanly
        system.apply_repair("customer")
        assert system.detect("customer").total_violations() == 0
        system.close()
