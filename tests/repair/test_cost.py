"""Tests for the repair cost model and string distances."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.repair.cost import (
    CostModel,
    damerau_levenshtein,
    normalized_distance,
    similarity,
)


class TestDamerauLevenshtein:
    @pytest.mark.parametrize(
        "left,right,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "abd", 1),
            ("abc", "ab", 1),
            ("ab", "abc", 1),
            ("abcd", "abdc", 1),  # transposition
            ("kitten", "sitting", 3),
            ("", "xyz", 3),
        ],
    )
    def test_known_distances(self, left, right, expected):
        assert damerau_levenshtein(left, right) == expected

    @given(st.text(max_size=12), st.text(max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_symmetry_and_identity(self, left, right):
        assert damerau_levenshtein(left, right) == damerau_levenshtein(right, left)
        assert damerau_levenshtein(left, left) == 0

    @given(st.text(max_size=10), st.text(max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_longer_length(self, left, right):
        assert damerau_levenshtein(left, right) <= max(len(left), len(right))


class TestNormalizedDistance:
    def test_equal_values(self):
        assert normalized_distance("x", "x") == 0.0
        assert normalized_distance(None, None) == 0.0

    def test_null_change_costs_one(self):
        assert normalized_distance(None, "x") == 1.0
        assert normalized_distance("x", None) == 1.0

    def test_numeric_relative_difference(self):
        assert normalized_distance(100, 110) == pytest.approx(10 / 110)
        assert normalized_distance(0, 1000) == 1.0

    def test_string_distance_normalised(self):
        assert 0 < normalized_distance("Mayfield", "Mayfeild") < 0.5
        assert normalized_distance("abc", "xyz") == 1.0

    @given(st.one_of(st.text(max_size=10), st.integers(-1000, 1000), st.none()),
           st.one_of(st.text(max_size=10), st.integers(-1000, 1000), st.none()))
    @settings(max_examples=80, deadline=None)
    def test_always_in_unit_interval(self, left, right):
        assert 0.0 <= normalized_distance(left, right) <= 1.0

    def test_similarity_complement(self):
        assert similarity("ab", "ab") == 1.0
        assert similarity(None, "x") == 0.0


class TestCostModel:
    def test_default_weight(self):
        model = CostModel.uniform(2.0)
        assert model.weight(0, "A") == 2.0

    def test_attribute_weight_overrides_default(self):
        model = CostModel(attribute_weights={"A": 5.0})
        assert model.weight(1, "A") == 5.0
        assert model.weight(1, "B") == 1.0

    def test_cell_weight_overrides_attribute(self):
        model = CostModel(attribute_weights={"A": 5.0})
        model.set_cell_weight(3, "A", 0.1)
        assert model.weight(3, "A") == 0.1
        assert model.weight(4, "A") == 5.0

    def test_protect_cell_makes_change_expensive(self):
        model = CostModel.uniform()
        model.protect_cell(0, "A")
        assert model.change_cost(0, "A", "x", "y") > 1000

    def test_change_cost_scales_with_distance(self):
        model = CostModel.uniform()
        small = model.change_cost(0, "A", "Mayfield", "Mayfeild")
        large = model.change_cost(0, "A", "Mayfield", "Zanzibar")
        assert small < large

    def test_fresh_penalty_applied(self):
        model = CostModel.uniform()
        base = model.change_cost(0, "A", "x", "completely-new")
        fresh = model.change_cost(0, "A", "x", "completely-new", fresh=True)
        assert fresh == pytest.approx(base * model.fresh_value_penalty)

    def test_repair_cost_sums_changes(self):
        model = CostModel.uniform()
        total = model.repair_cost({(0, "A"): ("x", "y"), (1, "B"): ("u", "u")})
        assert total == pytest.approx(model.change_cost(0, "A", "x", "y"))
