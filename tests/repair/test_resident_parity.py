"""Property: the backend-resident repair source is change-for-change identical
to the native full-relation repairer.

The planner half of the split (``BatchRepairer``) is deterministic, so the
whole refactor reduces to one oracle statement: for *any* relation (NULL cells
included), *any* tableau set (overlapping patterns, multi-attribute and
wildcard RHS, constant patterns) and *any* cost model (skewed attribute
weights, protected cells), ``repair_with_source(BackendRepairSource(...))``
must produce exactly the change list, cost and residual count of
``repair(relation, ...)`` — on both storage backends.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SqliteBackend
from repro.core.parser import parse_cfd
from repro.engine.relation import Relation
from repro.engine.types import RelationSchema
from repro.repair.cost import CostModel
from repro.repair.repairer import BatchRepairer
from repro.repair.source import BackendRepairSource

ATTRIBUTES = ["A", "B", "C", "D"]

cell_value = st.sampled_from(["a", "b", None])
pattern_value = st.sampled_from(["_", "a", "b"])
row_strategy = st.fixed_dictionaries({name: cell_value for name in ATTRIBUTES})


def _draw_cfd(data, index):
    lhs = data.draw(
        st.lists(st.sampled_from(ATTRIBUTES), min_size=1, max_size=2, unique=True)
    )
    remaining = [name for name in ATTRIBUTES if name not in lhs]
    rhs = data.draw(st.lists(st.sampled_from(remaining), min_size=1, max_size=2, unique=True))
    patterns = []
    for _ in range(data.draw(st.integers(min_value=1, max_value=2))):
        cells = []
        for side in (lhs, rhs):
            rendered = []
            for name in side:
                value = data.draw(pattern_value)
                rendered.append(f"{name}={value}" if value == "_" else f"{name}='{value}'")
            cells.append(", ".join(rendered))
        patterns.append(f"[{cells[0]}] -> [{cells[1]}]")
    return parse_cfd(f"r: {' ; '.join(patterns)}", name=f"cfd{index}")


def _changes(repair):
    return [
        (change.tid, change.attribute, change.old_value, change.new_value, change.cost)
        for change in repair.changes
    ]


@pytest.mark.parametrize("backend_name", ["memory", "sqlite"])
@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_resident_repair_matches_native_oracle(backend_name, data):
    rows = data.draw(st.lists(row_strategy, min_size=2, max_size=12))
    cfds = [
        _draw_cfd(data, index)
        for index in range(data.draw(st.integers(min_value=1, max_value=3)))
    ]
    weights = {
        name: data.draw(st.sampled_from([0.5, 1.0, 3.0])) for name in ATTRIBUTES
    }
    cost_model = CostModel(attribute_weights=weights)
    for _ in range(data.draw(st.integers(min_value=0, max_value=2))):
        cost_model.protect_cell(
            data.draw(st.integers(min_value=0, max_value=len(rows) - 1)),
            data.draw(st.sampled_from(ATTRIBUTES)),
        )

    schema = RelationSchema.of("r", ATTRIBUTES)
    relation = Relation.from_rows(schema, rows)
    native = BatchRepairer(cost_model=cost_model, max_iterations=12).repair(
        relation, cfds
    )

    backend = MemoryBackend() if backend_name == "memory" else SqliteBackend()
    try:
        backend.add_relation(relation.copy())
        source = BackendRepairSource(backend, "r")
        resident = BatchRepairer(
            cost_model=cost_model, max_iterations=12
        ).repair_with_source(source, cfds)

        assert _changes(resident) == _changes(native)
        assert resident.total_cost == pytest.approx(native.total_cost)
        assert resident.residual_violations == native.residual_violations
        assert resident.iterations == native.iterations
        assert resident.source == "backend"
        # the partial view agrees with the oracle's repaired relation on
        # every tuple it fetched
        repaired_rows = dict(native.repaired.rows())
        for tid, row in resident.repaired.rows():
            assert row == repaired_rows[tid]
    finally:
        backend.close()
