"""Tests for the textual CFD syntax."""

import pytest

from repro.core.parser import format_cfd, parse_cfd, parse_cfds
from repro.errors import CfdParseError


class TestParseCfd:
    def test_constant_cfd(self):
        cfd = parse_cfd("customer: [CC='44'] -> [CNT='UK']")
        assert cfd.relation == "customer"
        assert cfd.lhs == ("CC",)
        assert cfd.rhs == ("CNT",)
        assert cfd.patterns[0].value("CC").constant == "44"
        assert cfd.patterns[0].value("CNT").constant == "UK"

    def test_variable_cfd_with_condition(self):
        cfd = parse_cfd("customer: [CNT='UK', ZIP=_] -> [STR=_]")
        assert cfd.patterns[0].value("CNT").constant == "UK"
        assert cfd.patterns[0].value("ZIP").is_wildcard
        assert cfd.patterns[0].value("STR").is_wildcard

    def test_attributes_without_value_default_to_wildcard(self):
        cfd = parse_cfd("customer: [CNT, ZIP] -> [CITY]")
        assert cfd.is_plain_fd()

    def test_default_relation(self):
        cfd = parse_cfd("[A=_] -> [B=_]", default_relation="r")
        assert cfd.relation == "r"

    def test_missing_relation_rejected(self):
        with pytest.raises(CfdParseError):
            parse_cfd("[A=_] -> [B=_]")

    def test_numeric_constants(self):
        cfd = parse_cfd("r: [N=42, X=3.5] -> [B='y']")
        assert cfd.patterns[0].value("N").constant == 42
        assert cfd.patterns[0].value("X").constant == 3.5

    def test_bare_string_constants(self):
        cfd = parse_cfd("r: [A=UK] -> [B=London]")
        assert cfd.patterns[0].value("A").constant == "UK"

    def test_double_quoted_and_escaped_single_quote(self):
        cfd = parse_cfd("r: [A=\"New York\"] -> [B='O''Hare']")
        assert cfd.patterns[0].value("A").constant == "New York"
        assert cfd.patterns[0].value("B").constant == "O'Hare"

    def test_multiple_pattern_groups(self):
        cfd = parse_cfd("customer: [CC='44'] -> [CNT='UK'] ; [CC='01'] -> [CNT='US']")
        assert len(cfd.patterns) == 2

    def test_mismatched_groups_rejected(self):
        with pytest.raises(CfdParseError):
            parse_cfd("r: [A=_] -> [B=_] ; [C=_] -> [B=_]")

    def test_values_containing_commas_in_quotes(self):
        cfd = parse_cfd("r: [A='x, y'] -> [B=_]")
        assert cfd.patterns[0].value("A").constant == "x, y"

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "r: [A=_]",
            "r: [A=_] -> ",
            "r: [A=_] -> []",
            "r: A=_ -> [B=_]",
            "r: [A=_] -> [B=_] -> [C=_]",
        ],
    )
    def test_malformed_specifications(self, text):
        with pytest.raises(CfdParseError):
            parse_cfd(text)

    def test_explicit_name(self):
        assert parse_cfd("r: [A=_] -> [B=_]", name="my_cfd").name == "my_cfd"


class TestParseCfds:
    def test_multiline_with_comments(self):
        text = """
        # customer constraints
        customer: [CC='44'] -> [CNT='UK']

        customer: [CNT, ZIP] -> [CITY]
        """
        cfds = parse_cfds(text)
        assert len(cfds) == 2
        assert cfds[0].name == "cfd1"
        assert cfds[1].name == "cfd2"

    def test_error_reports_line_number(self):
        with pytest.raises(CfdParseError, match="line 2"):
            parse_cfds("r: [A=_] -> [B=_]\nbroken line")

    def test_default_relation_applies_to_all(self):
        cfds = parse_cfds("[A=_] -> [B=_]\n[C=_] -> [D=_]", default_relation="t")
        assert all(cfd.relation == "t" for cfd in cfds)


class TestFormatRoundtrip:
    @pytest.mark.parametrize(
        "text",
        [
            "customer: [CC='44'] -> [CNT='UK']",
            "customer: [CNT='UK', ZIP=_] -> [STR=_]",
            "customer: [CNT=_, ZIP=_] -> [CITY=_]",
            "customer: [CC='44'] -> [CNT='UK'] ; [CC='01'] -> [CNT='US']",
            "r: [A='it''s'] -> [B=_]",
        ],
    )
    def test_parse_format_parse_is_stable(self, text):
        cfd = parse_cfd(text)
        rendered = format_cfd(cfd)
        reparsed = parse_cfd(rendered)
        assert reparsed.lhs == cfd.lhs
        assert reparsed.rhs == cfd.rhs
        assert reparsed.patterns == cfd.patterns
