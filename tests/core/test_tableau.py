"""Tests for pattern tableaux: merging and relational encoding."""

import pytest

from repro.core.cfd import CFD
from repro.core.parser import parse_cfd
from repro.core.tableau import (
    PATTERN_ID_COLUMN,
    merge_cfds,
    relation_to_tableau,
    split_constant_variable,
    tableau_size,
    tableau_to_relation,
)
from repro.errors import CfdError


@pytest.fixture
def phi4():
    return parse_cfd("customer: [CC='44'] -> [CNT='UK'] ; [CC='01'] -> [CNT='US']")


class TestMergeCfds:
    def test_same_fd_merges_patterns(self):
        a = parse_cfd("customer: [CC='44'] -> [CNT='UK']")
        b = parse_cfd("customer: [CC='01'] -> [CNT='US']")
        merged = merge_cfds([a, b])
        assert len(merged) == 1
        assert len(merged[0].patterns) == 2

    def test_duplicate_patterns_removed(self):
        a = parse_cfd("customer: [CC='44'] -> [CNT='UK']")
        b = parse_cfd("customer: [CC='44'] -> [CNT='UK']")
        merged = merge_cfds([a, b])
        assert len(merged[0].patterns) == 1

    def test_different_fds_not_merged(self):
        a = parse_cfd("customer: [CC=_] -> [CNT=_]")
        b = parse_cfd("customer: [CNT=_, ZIP=_] -> [CITY=_]")
        assert len(merge_cfds([a, b])) == 2

    def test_order_preserved(self):
        a = parse_cfd("customer: [CNT=_, ZIP=_] -> [CITY=_]")
        b = parse_cfd("customer: [CC=_] -> [CNT=_]")
        merged = merge_cfds([a, b])
        assert merged[0].lhs == ("CNT", "ZIP")


class TestRelationalEncoding:
    def test_tableau_to_relation_columns_and_rows(self, phi4):
        relation = tableau_to_relation(phi4, "tab")
        assert relation.attribute_names == [PATTERN_ID_COLUMN, "CC", "CNT"]
        rows = relation.to_list()
        assert rows[0] == {PATTERN_ID_COLUMN: 0, "CC": "44", "CNT": "UK"}
        assert rows[1] == {PATTERN_ID_COLUMN: 1, "CC": "01", "CNT": "US"}

    def test_wildcards_encoded_as_null(self):
        # NULL is the wildcard encoding — no constant can collide with it,
        # unlike the old '_' token, which a literal '_' constant shadowed
        cfd = parse_cfd("customer: [CNT='UK', ZIP=_] -> [STR=_]")
        row = tableau_to_relation(cfd).to_list()[0]
        assert row["ZIP"] is None
        assert row["STR"] is None
        assert row["CNT"] == "UK"

    def test_roundtrip(self, phi4):
        relation = tableau_to_relation(phi4)
        rebuilt = relation_to_tableau(phi4, relation)
        assert rebuilt.patterns == phi4.patterns

    def test_roundtrip_empty_relation_rejected(self, phi4):
        relation = tableau_to_relation(phi4)
        relation.clear()
        with pytest.raises(CfdError):
            relation_to_tableau(phi4, relation)


class TestHelpers:
    def test_tableau_size(self, phi4):
        other = parse_cfd("customer: [CNT=_, ZIP=_] -> [CITY=_]")
        assert tableau_size([phi4, other]) == 3

    def test_split_constant_variable(self):
        constant = parse_cfd("customer: [CC='44'] -> [CNT='UK']")
        variable = parse_cfd("customer: [CNT='UK', ZIP=_] -> [STR=_]")
        const_patterns, var_patterns = split_constant_variable(constant)
        assert len(const_patterns) == 1 and not var_patterns
        const_patterns, var_patterns = split_constant_variable(variable)
        assert len(var_patterns) == 1 and not const_patterns
