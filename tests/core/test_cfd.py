"""Tests for the CFD class: construction, classification, semantics, serialisation."""

import pytest

from repro.core.cfd import CFD, normalize_all
from repro.core.pattern import PatternTuple
from repro.errors import CfdError, CfdSchemaError


@pytest.fixture
def phi2():
    """[CNT='UK', ZIP=_] -> [STR=_] — variable CFD with a condition."""
    return CFD.build("customer", {"CNT": "UK", "ZIP": "_"}, {"STR": "_"}, name="phi2")


@pytest.fixture
def phi4():
    """[CC='44'] -> [CNT='UK'] — constant CFD."""
    return CFD.build("customer", {"CC": "44"}, {"CNT": "UK"}, name="phi4")


class TestConstruction:
    def test_build_sets_sides_and_pattern(self, phi2):
        assert phi2.lhs == ("CNT", "ZIP")
        assert phi2.rhs == ("STR",)
        assert len(phi2.patterns) == 1

    def test_from_fd_is_plain_fd(self):
        fd = CFD.from_fd("customer", ["CNT", "ZIP"], ["CITY"])
        assert fd.is_plain_fd()
        assert fd.is_variable_cfd()
        assert not fd.is_constant_cfd()

    def test_empty_rhs_rejected(self):
        with pytest.raises(CfdError):
            CFD(relation="r", lhs=("A",), rhs=(), patterns=(PatternTuple.of({"A": "_"}),))

    def test_overlapping_sides_rejected(self):
        with pytest.raises(CfdError):
            CFD.build("r", {"A": "_"}, {"A": "_"})

    def test_pattern_must_cover_all_attributes(self):
        with pytest.raises(CfdError):
            CFD(
                relation="r",
                lhs=("A",),
                rhs=("B",),
                patterns=(PatternTuple.of({"A": "_"}),),
            )

    def test_empty_lhs_allowed_for_constant_assertion(self):
        cfd = CFD(
            relation="r",
            lhs=(),
            rhs=("B",),
            patterns=(PatternTuple.of({"B": "always"}),),
        )
        assert cfd.single_tuple_violation({"B": "other"})

    def test_empty_lhs_with_wildcard_rhs_rejected(self):
        with pytest.raises(CfdError):
            CFD(relation="r", lhs=(), rhs=("B",), patterns=(PatternTuple.of({"B": "_"}),))


class TestClassification:
    def test_constant_cfd(self, phi4):
        assert phi4.is_constant_cfd()
        assert not phi4.is_variable_cfd()
        assert not phi4.is_plain_fd()

    def test_variable_cfd_with_condition(self, phi2):
        assert phi2.is_variable_cfd()
        assert not phi2.is_constant_cfd()
        assert not phi2.is_plain_fd()

    def test_identifier_uses_name_when_available(self, phi2):
        assert phi2.identifier == "phi2"
        unnamed = CFD.build("customer", {"CC": "44"}, {"CNT": "UK"})
        assert "customer" in unnamed.identifier

    def test_validate_against_schema(self, phi2):
        phi2.validate_against(["CNT", "ZIP", "STR", "CC"])
        with pytest.raises(CfdSchemaError):
            phi2.validate_against(["CNT", "ZIP"])


class TestNormalisation:
    def test_multi_rhs_splits(self):
        cfd = CFD.build("r", {"A": "_"}, {"B": "_", "C": "x"})
        normalized = cfd.normalize()
        assert len(normalized) == 2
        assert all(len(sub.rhs) == 1 for sub in normalized)
        assert all(sub.is_normalized() for sub in normalized)

    def test_multi_pattern_splits(self):
        cfd = CFD(
            relation="r",
            lhs=("A",),
            rhs=("B",),
            patterns=(
                PatternTuple.of({"A": "x", "B": "1"}),
                PatternTuple.of({"A": "y", "B": "2"}),
            ),
        )
        assert len(cfd.normalize()) == 2

    def test_normalize_is_idempotent(self, phi2):
        once = phi2.normalize()
        twice = normalize_all(once)
        assert len(once) == len(twice) == 1
        assert twice[0].lhs == phi2.lhs

    def test_normalize_all_flattens(self, phi2, phi4):
        assert len(normalize_all([phi2, phi4])) == 2


class TestSemantics:
    def test_applies_to_requires_constant_match_and_non_null_lhs(self, phi2):
        assert phi2.applies_to({"CNT": "UK", "ZIP": "EH1", "STR": "x"})
        assert not phi2.applies_to({"CNT": "US", "ZIP": "EH1", "STR": "x"})
        assert not phi2.applies_to({"CNT": "UK", "ZIP": None, "STR": "x"})

    def test_single_tuple_violation_constant_rhs(self, phi4):
        assert phi4.single_tuple_violation({"CC": "44", "CNT": "FR"})
        assert not phi4.single_tuple_violation({"CC": "44", "CNT": "UK"})
        assert not phi4.single_tuple_violation({"CC": "01", "CNT": "FR"})

    def test_single_tuple_violation_null_rhs_counts(self, phi4):
        assert phi4.single_tuple_violation({"CC": "44", "CNT": None})

    def test_variable_cfd_has_no_single_violations(self, phi2):
        assert not phi2.single_tuple_violation({"CNT": "UK", "ZIP": "EH1", "STR": None})

    def test_pair_violation(self, phi2):
        row_a = {"CNT": "UK", "ZIP": "EH1", "STR": "High St"}
        row_b = {"CNT": "UK", "ZIP": "EH1", "STR": "Low Rd"}
        row_c = {"CNT": "UK", "ZIP": "EH2", "STR": "Low Rd"}
        assert phi2.pair_violation(row_a, row_b)
        assert not phi2.pair_violation(row_a, row_a)
        assert not phi2.pair_violation(row_a, row_c)

    def test_pair_violation_ignores_non_matching_pattern(self, phi2):
        row_a = {"CNT": "US", "ZIP": "111", "STR": "A"}
        row_b = {"CNT": "US", "ZIP": "111", "STR": "B"}
        assert not phi2.pair_violation(row_a, row_b)

    def test_pair_violation_constant_rhs_not_reported(self, phi4):
        # disagreement against a constant RHS is a single-tuple matter
        row_a = {"CC": "44", "CNT": "UK"}
        row_b = {"CC": "44", "CNT": "FR"}
        assert not phi4.pair_violation(row_a, row_b)


class TestSerialisation:
    def test_dict_roundtrip(self, phi2):
        rebuilt = CFD.from_dict(phi2.to_dict())
        assert rebuilt.lhs == phi2.lhs
        assert rebuilt.rhs == phi2.rhs
        assert rebuilt.patterns == phi2.patterns

    def test_str_rendering(self, phi2, phi4):
        assert "CNT" in str(phi2)
        assert "->" in str(phi4)

    def test_with_patterns(self, phi2):
        new_pattern = PatternTuple.of({"CNT": "_", "ZIP": "_", "STR": "_"})
        changed = phi2.with_patterns([new_pattern])
        assert changed.patterns == (new_pattern,)
        assert phi2.patterns != changed.patterns
