"""Tests for the direct (oracle) CFD satisfaction semantics, incl. property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cfd import CFD
from repro.core.parser import parse_cfd
from repro.core.satisfaction import (
    matching_tids,
    multi_tuple_violation_groups,
    satisfies,
    satisfies_all,
    single_tuple_violations,
    violating_tids,
    violation_counts,
)
from repro.engine.relation import Relation
from repro.engine.types import RelationSchema

SCHEMA = RelationSchema.of("customer", ["NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"])


def make_relation(rows):
    return Relation.from_rows(SCHEMA, rows)


@pytest.fixture
def phi2():
    return parse_cfd("customer: [CNT='UK', ZIP=_] -> [STR=_]", name="phi2")


@pytest.fixture
def phi4():
    return parse_cfd("customer: [CC='44'] -> [CNT='UK']", name="phi4")


@pytest.fixture
def example(customer_relation):
    return customer_relation


class TestSingleTupleViolations:
    def test_constant_violation_detected(self, example, phi4):
        violations = single_tuple_violations(example, phi4)
        assert violations == [(4, 0)]  # Anna: CC=44 but CNT=NL

    def test_satisfying_tuples_not_flagged(self, example, phi4):
        flagged = {tid for tid, _p in single_tuple_violations(example, phi4)}
        assert 0 not in flagged and 5 not in flagged

    def test_variable_cfd_has_no_single_violations(self, example, phi2):
        assert single_tuple_violations(example, phi2) == []


class TestMultiTupleViolations:
    def test_group_detected(self, example, phi2):
        groups = multi_tuple_violation_groups(example, phi2)
        assert len(groups) == 1
        pattern_index, key, tids = groups[0]
        assert key == ("UK", "EH4 1DT")
        assert tids == [0, 1]

    def test_agreeing_group_not_flagged(self, example):
        phi1 = parse_cfd("customer: [CNT=_, ZIP=_] -> [CITY=_]")
        assert multi_tuple_violation_groups(example, phi1) == []

    def test_null_rhs_tuples_ignored(self, phi2):
        relation = make_relation([
            {"CNT": "UK", "ZIP": "Z", "STR": None},
            {"CNT": "UK", "ZIP": "Z", "STR": "High St"},
        ])
        assert multi_tuple_violation_groups(relation, phi2) == []

    def test_null_lhs_tuples_ignored(self, phi2):
        relation = make_relation([
            {"CNT": "UK", "ZIP": None, "STR": "A"},
            {"CNT": "UK", "ZIP": None, "STR": "B"},
        ])
        assert multi_tuple_violation_groups(relation, phi2) == []


class TestAggregateHelpers:
    def test_satisfies_and_satisfies_all(self, example, phi2, phi4):
        assert not satisfies(example, phi2)
        assert not satisfies_all(example, [phi2, phi4])
        clean = make_relation([
            {"CNT": "UK", "ZIP": "Z", "STR": "A", "CC": "44"},
        ])
        assert satisfies(clean, phi2)
        assert satisfies(clean, phi4)

    def test_violating_tids(self, example, phi2, phi4):
        assert violating_tids(example, [phi2, phi4]) == {0, 1, 4}

    def test_violation_counts_matches_paper_definition(self, example, phi2, phi4):
        vio = violation_counts(example, [phi2, phi4])
        # Mike and Rick each jointly violate phi2 with one other tuple.
        assert vio[0] == 1 and vio[1] == 1
        # Anna violates phi4 on her own.
        assert vio[4] == 1
        # Everyone else is clean.
        assert vio[2] == vio[3] == vio[5] == 0

    def test_matching_tids(self, example, phi2):
        tids = matching_tids(example, phi2, phi2.patterns[0])
        assert set(tids) == {0, 1, 5}


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

small_value = st.sampled_from(["a", "b", "c", None])
row_strategy = st.fixed_dictionaries(
    {"CNT": small_value, "ZIP": small_value, "STR": small_value, "CC": small_value}
)
rows_strategy = st.lists(row_strategy, min_size=0, max_size=12)

MINI_SCHEMA = RelationSchema.of("customer", ["CNT", "ZIP", "STR", "CC"])


def mini_relation(rows):
    return Relation.from_rows(MINI_SCHEMA, rows)


@st.composite
def random_cfd(draw):
    lhs_attrs = draw(
        st.lists(st.sampled_from(["CNT", "ZIP", "CC"]), min_size=1, max_size=2, unique=True)
    )
    rhs_attr = draw(st.sampled_from([a for a in ["STR", "CNT", "CC"] if a not in lhs_attrs]))
    mapping = {}
    for attr in lhs_attrs:
        mapping[attr] = draw(st.sampled_from(["_", "a", "b"]))
    mapping[rhs_attr] = draw(st.sampled_from(["_", "a", "b"]))
    return CFD(
        relation="customer",
        lhs=tuple(lhs_attrs),
        rhs=(rhs_attr,),
        patterns=(__import__("repro.core.pattern", fromlist=["PatternTuple"]).PatternTuple.of(mapping),),
    )


class TestProperties:
    @given(rows=rows_strategy, cfd=random_cfd())
    @settings(max_examples=60, deadline=None)
    def test_normalize_preserves_violations(self, rows, cfd):
        relation = mini_relation(rows)
        direct = violating_tids(relation, [cfd])
        normalized = violating_tids(relation, cfd.normalize())
        assert direct == normalized

    @given(rows=rows_strategy, cfd=random_cfd())
    @settings(max_examples=60, deadline=None)
    def test_single_and_pair_semantics_agree_with_satisfies(self, rows, cfd):
        relation = mini_relation(rows)
        has_violation = bool(single_tuple_violations(relation, cfd)) or bool(
            multi_tuple_violation_groups(relation, cfd)
        )
        assert satisfies(relation, cfd) == (not has_violation)

    @given(rows=rows_strategy, cfd=random_cfd())
    @settings(max_examples=60, deadline=None)
    def test_vio_counts_nonnegative_and_only_for_violators(self, rows, cfd):
        relation = mini_relation(rows)
        vio = violation_counts(relation, [cfd])
        dirty = violating_tids(relation, [cfd])
        for tid, count in vio.items():
            assert count >= 0
            if count > 0:
                assert tid in dirty

    @given(rows=rows_strategy, cfd=random_cfd())
    @settings(max_examples=40, deadline=None)
    def test_duplicating_a_tuple_never_creates_single_violations(self, rows, cfd):
        relation = mini_relation(rows)
        baseline = {tid for tid, _p in single_tuple_violations(relation, cfd)}
        if rows:
            relation.insert(rows[0])
            after = {tid for tid, _p in single_tuple_violations(relation, cfd)}
            assert baseline <= after
