"""Tests for pattern values and pattern tuples."""

import pytest

from repro.core.pattern import WILDCARD_TOKEN, PatternTuple, PatternValue
from repro.errors import CfdError


class TestPatternValue:
    def test_wildcard_matches_any_non_null(self):
        wildcard = PatternValue.wildcard()
        assert wildcard.matches("anything")
        assert wildcard.matches(0)
        assert not wildcard.matches(None)

    def test_constant_matches_equal_value_only(self):
        const = PatternValue.const("UK")
        assert const.matches("UK")
        assert not const.matches("US")
        assert not const.matches(None)

    def test_numeric_constants_compare_across_types(self):
        assert PatternValue.const(44).matches(44.0)

    def test_parse_wildcard_token(self):
        assert PatternValue.parse("_").is_wildcard
        assert PatternValue.parse(None).is_wildcard
        assert PatternValue.parse("UK").constant == "UK"

    def test_constant_cannot_be_null(self):
        with pytest.raises(CfdError):
            PatternValue.const(None)

    def test_wildcard_cannot_carry_constant(self):
        with pytest.raises(CfdError):
            PatternValue(constant="x", is_wildcard=True)

    def test_encode(self):
        assert PatternValue.wildcard().encode() == WILDCARD_TOKEN
        assert PatternValue.const("UK").encode() == "UK"

    def test_str(self):
        assert str(PatternValue.wildcard()) == "_"
        assert "UK" in str(PatternValue.const("UK"))


class TestPatternTuple:
    @pytest.fixture
    def pattern(self):
        return PatternTuple.of({"CNT": "UK", "ZIP": "_", "STR": "_"})

    def test_attributes_preserve_order(self, pattern):
        assert pattern.attributes == ("CNT", "ZIP", "STR")

    def test_value_lookup(self, pattern):
        assert pattern.value("CNT").constant == "UK"
        assert pattern.value("ZIP").is_wildcard
        with pytest.raises(CfdError):
            pattern.value("MISSING")

    def test_contains(self, pattern):
        assert "CNT" in pattern
        assert "CC" not in pattern

    def test_constant_and_wildcard_attributes(self, pattern):
        assert pattern.constant_attributes() == ("CNT",)
        assert pattern.wildcard_attributes() == ("ZIP", "STR")

    def test_matches_requires_all_positions(self, pattern):
        assert pattern.matches({"CNT": "UK", "ZIP": "EH1", "STR": "High St"})
        assert not pattern.matches({"CNT": "US", "ZIP": "EH1", "STR": "High St"})
        assert not pattern.matches({"CNT": "UK", "ZIP": None, "STR": "High St"})

    def test_matches_constants_ignores_wildcards(self, pattern):
        assert pattern.matches_constants({"CNT": "UK", "ZIP": None, "STR": None})
        assert not pattern.matches_constants({"CNT": "US"})

    def test_restrict(self, pattern):
        restricted = pattern.restrict(["STR", "CNT"])
        assert restricted.attributes == ("STR", "CNT")

    def test_subsumes(self):
        general = PatternTuple.of({"A": "_", "B": "_"})
        specific = PatternTuple.of({"A": "x", "B": "_"})
        assert general.subsumes(specific)
        assert not specific.subsumes(general)
        assert specific.subsumes(specific)

    def test_subsumes_requires_same_attributes(self):
        left = PatternTuple.of({"A": "_"})
        right = PatternTuple.of({"B": "_"})
        assert not left.subsumes(right)

    def test_all_constants_all_wildcards(self):
        assert PatternTuple.of({"A": "x"}).is_all_constants()
        assert PatternTuple.of({"A": "_"}).is_all_wildcards()

    def test_encode(self, pattern):
        assert pattern.encode() == {"CNT": "UK", "ZIP": "_", "STR": "_"}

    def test_of_accepts_pattern_values(self):
        tuple_ = PatternTuple.of({"A": PatternValue.const(1), "B": PatternValue.wildcard()})
        assert tuple_.value("A").constant == 1
        assert tuple_.value("B").is_wildcard
