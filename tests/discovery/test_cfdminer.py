"""Tests for constant CFD mining."""

import pytest

from repro.core.satisfaction import satisfies
from repro.datasets import generate_customers
from repro.discovery.cfdminer import ConstantCfdMiner
from repro.engine.relation import Relation
from repro.engine.types import RelationSchema
from repro.errors import DiscoveryError


@pytest.fixture
def reference():
    """Clean reference data where CC='44' always goes with CNT='UK' etc."""
    return generate_customers(150, seed=23)


class TestConfiguration:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(DiscoveryError):
            ConstantCfdMiner(min_support=0)
        with pytest.raises(DiscoveryError):
            ConstantCfdMiner(min_confidence=0.0)
        with pytest.raises(DiscoveryError):
            ConstantCfdMiner(max_lhs_size=0)


class TestMining:
    def test_discovers_country_code_bindings(self, reference):
        miner = ConstantCfdMiner(min_support=5, min_confidence=1.0, max_lhs_size=1)
        rules = miner.mine(reference)
        as_pairs = {(rule.lhs_items, rule.rhs_item) for rule in rules}
        assert ((("CC", "44"),), ("CNT", "UK")) in as_pairs
        assert ((("CC", "01"),), ("CNT", "US")) in as_pairs

    def test_rules_meet_support_and_confidence(self, reference):
        miner = ConstantCfdMiner(min_support=10, min_confidence=1.0, max_lhs_size=1)
        for rule in miner.mine(reference):
            assert rule.support >= 10
            assert rule.confidence == pytest.approx(1.0)

    def test_mined_cfds_hold_on_reference_data(self, reference):
        miner = ConstantCfdMiner(min_support=8, min_confidence=1.0, max_lhs_size=1)
        cfds = miner.mine_cfds(reference)
        assert cfds
        for cfd in cfds[:20]:
            assert satisfies(reference, cfd)

    def test_minimal_lhs_only(self, reference):
        miner = ConstantCfdMiner(min_support=5, min_confidence=1.0, max_lhs_size=2)
        rules = miner.mine(reference)
        # If [CC='44'] -> [CNT='UK'] is found, no rule with a superset LHS and
        # the same RHS item should be kept.
        lhs_sets = [
            frozenset(rule.lhs_items)
            for rule in rules
            if rule.rhs_item == ("CNT", "UK")
        ]
        for i, left in enumerate(lhs_sets):
            for j, right in enumerate(lhs_sets):
                if i != j:
                    assert not left < right

    def test_confidence_threshold_allows_approximate_rules(self):
        schema = RelationSchema.of("r", ["A", "B"])
        rows = [{"A": "x", "B": "1"}] * 9 + [{"A": "x", "B": "2"}]
        relation = Relation.from_rows(schema, rows)
        exact = ConstantCfdMiner(min_support=2, min_confidence=1.0).mine(relation)
        approx = ConstantCfdMiner(min_support=2, min_confidence=0.85).mine(relation)
        exact_rules = {(r.lhs_items, r.rhs_item) for r in exact}
        approx_rules = {(r.lhs_items, r.rhs_item) for r in approx}
        assert ((("A", "x"),), ("B", "1")) not in exact_rules
        assert ((("A", "x"),), ("B", "1")) in approx_rules

    def test_support_threshold_prunes(self, reference):
        low = ConstantCfdMiner(min_support=2, max_lhs_size=1).mine(reference)
        high = ConstantCfdMiner(min_support=40, max_lhs_size=1).mine(reference)
        assert len(high) <= len(low)

    def test_rule_to_cfd(self, reference):
        miner = ConstantCfdMiner(min_support=5, max_lhs_size=1)
        rule = miner.mine(reference)[0]
        cfd = rule.to_cfd("customer", name="mined1")
        assert cfd.relation == "customer"
        assert cfd.is_constant_cfd()
        assert cfd.name == "mined1"
