"""Tests for the discovery lattice utilities."""

import pytest

from repro.datasets import generate_customers
from repro.discovery.lattice import (
    attribute_subsets,
    fd_confidence,
    fd_holds,
    fd_violating_blocks,
    partition,
    value_frequencies,
)
from repro.engine.relation import Relation
from repro.engine.types import RelationSchema

SCHEMA = RelationSchema.of("r", ["A", "B", "C"])


@pytest.fixture
def relation():
    return Relation.from_rows(
        SCHEMA,
        [
            {"A": "x", "B": "1", "C": "p"},
            {"A": "x", "B": "1", "C": "p"},
            {"A": "x", "B": "2", "C": "q"},
            {"A": "y", "B": "3", "C": "p"},
            {"A": None, "B": "3", "C": "p"},
        ],
    )


class TestAttributeSubsets:
    def test_sizes_respected(self):
        subsets = list(attribute_subsets(["A", "B", "C"], 2))
        assert ("A",) in subsets and ("A", "B") in subsets
        assert ("A", "B", "C") not in subsets

    def test_empty_for_zero_size(self):
        assert list(attribute_subsets(["A"], 0)) == []


class TestPartition:
    def test_blocks_by_values(self, relation):
        blocks = partition(relation, ["A"])
        assert sorted(len(v) for v in blocks.values()) == [1, 1, 3]

    def test_null_rows_get_singleton_blocks(self, relation):
        blocks = partition(relation, ["A"])
        null_blocks = [key for key in blocks if key[0] == "__null__"]
        assert len(null_blocks) == 1


class TestFdChecks:
    def test_fd_holds(self, relation):
        assert fd_holds(relation, ["A", "B"], "C")
        assert not fd_holds(relation, ["A"], "B")
        assert fd_holds(relation, ["B"], "C")

    def test_fd_violating_blocks(self, relation):
        violating = fd_violating_blocks(relation, ["A"], "B")
        assert len(violating) == 1
        key, tids = violating[0]
        assert key == ("x",) and len(tids) == 3

    def test_fd_confidence(self, relation):
        assert fd_confidence(relation, ["A", "B"], "C") == 1.0
        # Blocks: A='x' keeps 2 of 3, A='y' keeps 1, the NULL singleton keeps 1.
        assert fd_confidence(relation, ["A"], "B") == pytest.approx(4 / 5)

    def test_fd_confidence_on_clean_generated_data(self):
        relation = generate_customers(60, seed=3)
        assert fd_confidence(relation, ["CC"], "CNT") == 1.0


class TestValueFrequencies:
    def test_counts_non_null(self, relation):
        counts = value_frequencies(relation, "A")
        assert counts == {"x": 3, "y": 1}
