"""Tests for variable CFD discovery (CTANE-style)."""

import pytest

from repro.core.satisfaction import satisfies
from repro.datasets import generate_customers
from repro.discovery.ctane import VariableCfdDiscoverer
from repro.engine.relation import Relation
from repro.engine.types import RelationSchema
from repro.errors import DiscoveryError


@pytest.fixture
def reference():
    return generate_customers(120, seed=29)


class TestConfiguration:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(DiscoveryError):
            VariableCfdDiscoverer(min_support=1)
        with pytest.raises(DiscoveryError):
            VariableCfdDiscoverer(min_confidence=1.5)
        with pytest.raises(DiscoveryError):
            VariableCfdDiscoverer(max_lhs_size=0)
        with pytest.raises(DiscoveryError):
            VariableCfdDiscoverer(max_lhs_size=2, max_conditions=3)


class TestPlainFdDiscovery:
    def test_finds_known_fds(self, reference):
        discoverer = VariableCfdDiscoverer(min_support=5, max_lhs_size=1)
        discovered = discoverer.discover(reference)
        fds = {
            (item.cfd.lhs, item.cfd.rhs)
            for item in discovered
            if not item.conditional
        }
        assert (("CC",), ("CNT",)) in fds
        assert (("ZIP",), ("CITY",)) in fds

    def test_minimal_lhs_preferred(self, reference):
        discoverer = VariableCfdDiscoverer(min_support=5, max_lhs_size=2)
        discovered = discoverer.discover(reference)
        plain = [item for item in discovered if not item.conditional]
        # CC -> CNT is found with a single-attribute LHS, so no 2-attribute
        # superset LHS containing CC should also be reported for CNT.
        for item in plain:
            if item.cfd.rhs == ("CNT",) and "CC" in item.cfd.lhs:
                assert item.cfd.lhs == ("CC",)

    def test_discovered_fds_hold(self, reference):
        discoverer = VariableCfdDiscoverer(min_support=5, max_lhs_size=1)
        for item in discoverer.discover(reference):
            if not item.conditional:
                assert satisfies(reference, item.cfd)
                assert item.confidence == 1.0


class TestConditionedDiscovery:
    @pytest.fixture
    def conditional_relation(self):
        """ZIP -> STR holds only for CNT='UK'; elsewhere it is violated."""
        schema = RelationSchema.of("customer", ["CNT", "ZIP", "STR"])
        rows = []
        for i in range(10):
            rows.append({"CNT": "UK", "ZIP": f"Z{i % 3}", "STR": f"S{i % 3}"})
        for i in range(10):
            rows.append({"CNT": "US", "ZIP": f"Z{i % 3}", "STR": f"S{i}"})
        return Relation.from_rows(schema, rows)

    def test_condition_discovered(self, conditional_relation):
        discoverer = VariableCfdDiscoverer(min_support=3, max_lhs_size=2, max_conditions=1)
        discovered = discoverer.discover(conditional_relation)
        conditional = [item for item in discovered if item.conditional]
        matching = [
            item
            for item in conditional
            if item.cfd.rhs == ("STR",)
            and "ZIP" in item.cfd.lhs
            and any(
                value.is_constant and value.constant == "UK"
                for _attr, value in item.cfd.patterns[0].values
            )
        ]
        assert matching, "expected a [CNT='UK', ZIP=_] -> [STR=_] style CFD"
        for item in matching:
            assert satisfies(conditional_relation, item.cfd)

    def test_max_conditions_zero_disables_conditioning(self, conditional_relation):
        discoverer = VariableCfdDiscoverer(min_support=3, max_lhs_size=2, max_conditions=0)
        discovered = discoverer.discover(conditional_relation)
        assert all(not item.conditional for item in discovered)

    def test_discover_cfds_names_results(self, reference):
        discoverer = VariableCfdDiscoverer(min_support=10, max_lhs_size=1)
        cfds = discoverer.discover_cfds(reference, name_prefix="auto")
        assert cfds and all(cfd.name.startswith("auto") for cfd in cfds)
        assert len({cfd.name for cfd in cfds}) == len(cfds)
