"""Tests for sampling, splitting and validating discovered CFDs."""

import pytest

from repro.datasets import generate_customers, inject_noise, paper_cfds
from repro.discovery.sampling import sample_relation, split_relation, validate_cfds


@pytest.fixture
def relation():
    return generate_customers(100, seed=37)


class TestSampleRelation:
    def test_sample_size(self, relation):
        sample = sample_relation(relation, 20, seed=1)
        assert len(sample) == 20

    def test_sample_larger_than_relation_returns_all(self, relation):
        assert len(sample_relation(relation, 500, seed=1)) == 100

    def test_deterministic_for_same_seed(self, relation):
        a = sample_relation(relation, 30, seed=5)
        b = sample_relation(relation, 30, seed=5)
        assert a.to_list() == b.to_list()

    def test_rows_come_from_source(self, relation):
        sample = sample_relation(relation, 10, seed=2)
        source_rows = relation.to_list()
        for row in sample.to_list():
            assert row in source_rows


class TestSplitRelation:
    def test_split_sizes(self, relation):
        training, holdout = split_relation(relation, holdout_fraction=0.25, seed=3)
        assert len(training) + len(holdout) == 100
        assert len(holdout) == 25

    def test_split_is_a_partition(self, relation):
        training, holdout = split_relation(relation, holdout_fraction=0.3, seed=4)
        combined = sorted(
            (tuple(sorted(row.items())) for row in training.to_list() + holdout.to_list())
        )
        original = sorted(tuple(sorted(row.items())) for row in relation.to_list())
        assert combined == original


class TestValidateCfds:
    def test_clean_data_has_zero_violation_rate(self, relation):
        results = validate_cfds(relation, paper_cfds())
        for metrics in results.values():
            assert metrics["violation_rate"] == 0.0

    def test_noisy_data_reports_violations(self, relation):
        dirty = inject_noise(relation, rate=0.1, seed=5, attributes=["CNT", "CC"]).dirty
        results = validate_cfds(dirty, paper_cfds())
        assert any(metrics["violation_rate"] > 0 for metrics in results.values())
        assert set(results) == {cfd.identifier for cfd in paper_cfds()}
