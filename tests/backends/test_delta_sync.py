"""Backend-resident incremental maintenance: per-tid delta shipping.

The data monitor forwards every applied update — and every incremental-repair
cell change — to the attached storage backend as a single-statement
INSERT/DELETE/UPDATE, so a monitored relation never needs the whole-relation
``add_relation(replace=True)`` re-sync the facade used to issue before each
``detect``.  These tests pin the delta ops at the backend level, the
no-full-resync property at the facade level (via the facade's sync counter
and a backend call log), and the ``clean()`` round-trip on a file-backed
SQLite store.
"""

import pytest

from repro import Semandaq, SemandaqConfig
from repro.backends import MemoryBackend, SqliteBackend
from repro.datasets import generate_customers, paper_cfds
from repro.detection.detector import ErrorDetector
from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.engine.types import AttributeDef, DataType, RelationSchema
from repro.errors import ConstraintViolationError, RepairError, UnknownTupleError
from repro.monitor.monitor import DataMonitor
from repro.monitor.updates import Update
from repro.repair.repairer import CellChange, Repair


SCHEMA = RelationSchema(
    "items",
    [
        AttributeDef("NAME"),
        AttributeDef("QTY", DataType.INTEGER),
        AttributeDef("OK", DataType.BOOLEAN),
    ],
)

ROWS = [
    {"NAME": "bolt", "QTY": 5, "OK": True},
    {"NAME": "nut", "QTY": 7, "OK": False},
    {"NAME": "washer", "QTY": 2, "OK": True},
]


def _loaded(backend):
    backend.add_relation(Relation.from_rows(SCHEMA, ROWS))
    return backend


@pytest.fixture(params=["memory", "sqlite"])
def backend(request):
    if request.param == "memory":
        instance = _loaded(MemoryBackend())
    else:
        instance = _loaded(SqliteBackend())
    yield instance
    instance.close()


class TestDeltaOps:
    def test_insert_row_assigns_next_tid(self, backend):
        tid = backend.insert_row("items", {"NAME": "screw", "QTY": 9, "OK": False})
        assert tid == 3
        assert backend.get_row("items", 3)["NAME"] == "screw"
        assert backend.row_count("items") == 4

    def test_insert_row_with_explicit_tid_is_stable(self, backend):
        tid = backend.insert_row("items", {"NAME": "nail", "QTY": 1, "OK": True}, tid=10)
        assert tid == 10
        assert backend.get_row("items", 10)["QTY"] == 1
        # the tid counter advanced past the explicit id
        assert backend.insert_row("items", {"NAME": "pin", "QTY": 4, "OK": True}) == 11

    def test_insert_row_rejects_live_tid(self, backend):
        with pytest.raises(ConstraintViolationError):
            backend.insert_row("items", {"NAME": "dup", "QTY": 0, "OK": True}, tid=0)

    def test_delete_row(self, backend):
        backend.delete_row("items", 1)
        assert backend.row_count("items") == 2
        with pytest.raises(UnknownTupleError):
            backend.get_row("items", 1)
        with pytest.raises(UnknownTupleError):
            backend.delete_row("items", 1)

    def test_update_row_changes_only_named_attributes(self, backend):
        backend.update_row("items", 2, {"QTY": 99, "OK": False})
        row = backend.get_row("items", 2)
        assert row == {"NAME": "washer", "QTY": 99, "OK": False}
        with pytest.raises(UnknownTupleError):
            backend.update_row("items", 42, {"QTY": 1})

    def test_update_row_empty_changes_still_validates_tid(self, backend):
        backend.update_row("items", 0, {})  # no-op on a live tid
        assert backend.get_row("items", 0)["NAME"] == "bolt"
        with pytest.raises(UnknownTupleError):
            backend.update_row("items", 42, {})

    def test_delta_ops_keep_backends_identical(self):
        memory, sqlite = _loaded(MemoryBackend()), _loaded(SqliteBackend())
        for instance in (memory, sqlite):
            instance.insert_row("items", {"NAME": "screw", "QTY": 9, "OK": False})
            instance.update_row("items", 0, {"QTY": 6})
            instance.delete_row("items", 1)
            instance.insert_row("items", {"NAME": "rivet", "QTY": 3, "OK": True}, tid=8)
        assert list(memory.iter_rows("items")) == list(sqlite.iter_rows("items"))
        sqlite.close()


def _monitored_batch(system):
    """Insert + modify + delete through the monitor, then detect."""
    relation = system.database.relation("customer")
    template = relation.get(relation.tids()[0])
    monitor = system.monitor("customer")
    monitor.apply_batch(
        [
            Update.insert(dict(template, STR="A Brand New Street")),
            Update.modify(relation.tids()[1], {"CNT": "Narnia"}),
            Update.delete(relation.tids()[2]),
        ]
    )
    return system.detect("customer")


class TestMonitoredDeltaSync:
    def test_memory_and_sqlite_reports_agree_without_full_resync(self):
        reports, syncs = {}, {}
        for backend_name in ("memory", "sqlite"):
            system = Semandaq(config=SemandaqConfig(backend=backend_name))
            system.register_relation(generate_customers(60, seed=47).copy())
            system.add_cfds(paper_cfds())
            reports[backend_name] = _monitored_batch(system)
            syncs[backend_name] = system.full_sync_count
            system.close()
        assert reports["memory"].vio() == reports["sqlite"].vio()
        assert reports["memory"].dirty_tids() == reports["sqlite"].dirty_tids()
        assert reports["sqlite"].total_violations() > 0
        # one bulk load at registration, never again afterwards
        assert syncs["sqlite"] == 1
        assert syncs["memory"] == 0  # shared working store: no sync at all

    def test_monitored_updates_ship_as_deltas_not_bulk_loads(self):
        system = Semandaq(config=SemandaqConfig(backend="sqlite"))
        system.register_relation(generate_customers(40, seed=53).copy())
        system.add_cfds(paper_cfds())
        calls = []
        original = system.backend.add_relation
        system.backend.add_relation = lambda *args, **kwargs: (
            calls.append(args[0].name),
            original(*args, **kwargs),
        )
        _monitored_batch(system)
        # only the per-CFD temp tableaux are bulk-written, never the data
        assert calls
        assert all(name.startswith("__semandaq_tableau") for name in calls)
        # the backend copy tracked the working store row for row
        working = dict(system.database.relation("customer").rows())
        assert dict(system.backend.iter_rows("customer")) == working
        system.close()

    def test_apply_batch_ships_one_delta_batch_round_trip(self):
        # three updates, one apply_delta_batch call (one transaction), not
        # three single-statement round trips
        system = Semandaq(config=SemandaqConfig(backend="sqlite"))
        system.register_relation(generate_customers(40, seed=57).copy())
        system.add_cfds(paper_cfds())
        shipped = []
        original = system.backend.apply_delta_batch
        system.backend.apply_delta_batch = lambda name, batch: (
            shipped.append((name, batch.statement_count)),
            original(name, batch),
        )
        _monitored_batch(system)
        assert shipped == [("customer", 3)]
        assert system.monitor("customer")._detector.batches_shipped == 1
        system.close()

    def test_facade_apply_updates_routes_through_one_batch(self):
        system = Semandaq(config=SemandaqConfig(backend="sqlite"))
        system.register_relation(generate_customers(40, seed=58).copy())
        system.add_cfds(paper_cfds())
        relation = system.database.relation("customer")
        shipped = []
        original = system.backend.apply_delta_batch
        system.backend.apply_delta_batch = lambda name, batch: (
            shipped.append(len(batch)),
            original(name, batch),
        )
        tids = system.apply_updates(
            "customer",
            [
                Update.modify(relation.tids()[0], {"CNT": "Narnia"}),
                Update.modify(relation.tids()[0], {"CITY": "Nowhere"}),
                Update.delete(relation.tids()[1]),
            ],
        )
        # the two modifies of one tuple coalesced: two touched tuples total
        assert shipped == [2]
        assert tids == [relation.tids()[0], relation.tids()[0], 1]
        assert dict(system.backend.iter_rows("customer")) == dict(relation.rows())
        assert system.detect("customer").total_violations() > 0
        system.close()

    def test_repair_mode_changes_reach_backend_as_updates(self):
        system = Semandaq(config=SemandaqConfig(backend="sqlite"))
        system.register_relation(generate_customers(50, seed=59).copy())
        system.add_cfds(paper_cfds())
        relation = system.database.relation("customer")
        template = relation.get(relation.tids()[0])
        monitor = system.monitor("customer", cleansed=True)
        monitor.apply_batch(
            [Update.insert(dict(template, STR="A Brand New Street"))]
        )
        assert len(monitor.repairs()) == 1
        # the incremental repair's cell changes were shipped down per tid
        assert dict(system.backend.iter_rows("customer")) == dict(
            system.database.relation("customer").rows()
        )
        assert system.full_sync_count == 1
        system.close()

    def test_apply_repair_detaches_the_retired_monitor(self):
        # apply_repair swaps the relation and its monitor; a user-held
        # reference to the old monitor must not keep mirroring deltas from
        # the replaced (ghost) relation into the backend copy
        from repro.datasets import inject_noise

        system = Semandaq(config=SemandaqConfig(backend="sqlite"))
        dirty = inject_noise(
            generate_customers(40, seed=79), rate=0.05, seed=80,
            attributes=["CNT", "CITY", "STR", "CC"],
        ).dirty
        system.register_relation(dirty.copy())
        system.add_cfds(paper_cfds())
        old_monitor = system.monitor("customer")
        system.repair("customer")
        system.apply_repair("customer")
        assert old_monitor.backend is None
        live = system.database.relation("customer")
        ghost_tid = old_monitor._detector.relation.tids()[0]
        old_monitor.apply(Update.modify(ghost_tid, {"CNT": "GhostLand"}))
        # the backend copy still tracks the live (repaired) relation
        assert dict(system.backend.iter_rows("customer")) == dict(live.rows())
        system.close()

    def test_reregistering_a_relation_drops_the_stale_monitor(self):
        # a cached monitor is bound to the replaced Relation object; if it
        # survived re-registration it would mirror deltas from that ghost
        # into the freshly synced backend copy
        system = Semandaq(config=SemandaqConfig(backend="sqlite"))
        system.register_relation(generate_customers(30, seed=71).copy())
        system.add_cfds(paper_cfds())
        old_monitor = system.monitor("customer")
        system.register_relation(generate_customers(30, seed=72).copy(), replace=True)
        new_monitor = system.monitor("customer")
        assert new_monitor is not old_monitor
        # the ghost's relation is detached: updates through the new monitor
        # reach the working store and the backend, and detect() agrees
        relation = system.database.relation("customer")
        assert new_monitor._detector.relation is relation
        new_monitor.apply(Update.modify(relation.tids()[0], {"CNT": "Narnia"}))
        assert dict(system.backend.iter_rows("customer")) == dict(relation.rows())
        assert system.detect("customer").total_violations() > 0
        # a user-held reference to the retired monitor was detached: its
        # updates hit only the ghost relation, never the backend copy
        assert old_monitor.backend is None
        ghost_tid = old_monitor._detector.relation.tids()[0]
        old_monitor.apply(Update.modify(ghost_tid, {"CNT": "GhostLand"}))
        assert dict(system.backend.iter_rows("customer")) == dict(relation.rows())
        system.close()

    def test_failed_mirror_delta_triggers_full_resync_on_next_detect(self):
        # if a delta ships after the working store mutated and the backend
        # errors out, the backend copy lags; the facade must notice and
        # bulk re-sync instead of silently detecting against stale data
        system = Semandaq(config=SemandaqConfig(backend="sqlite"))
        system.register_relation(generate_customers(30, seed=73).copy())
        system.add_cfds(paper_cfds())
        monitor = system.monitor("customer")
        relation = system.database.relation("customer")

        def exploding_apply_delta_batch(name, batch):
            raise RuntimeError("disk full")

        original_apply = system.backend.apply_delta_batch
        system.backend.apply_delta_batch = exploding_apply_delta_batch
        with pytest.raises(RuntimeError):
            monitor.apply(Update.modify(relation.tids()[0], {"CNT": "Narnia"}))
        system.backend.apply_delta_batch = original_apply
        # the working store took the update, the backend did not
        assert monitor.backend_desynced
        assert system.backend.get_row("customer", relation.tids()[0])["CNT"] != "Narnia"
        syncs_before = system.full_sync_count
        report = system.detect("customer")
        assert system.full_sync_count == syncs_before + 1
        assert not monitor.backend_desynced
        assert report.total_violations() > 0  # the Narnia update is visible
        assert dict(system.backend.iter_rows("customer")) == dict(relation.rows())
        system.close()

    def test_verify_untouched_guards_protected_tuples(self):
        database_system = Semandaq()
        database_system.register_relation(generate_customers(30, seed=61).copy())
        database_system.add_cfds(paper_cfds())
        monitor = database_system.monitor("customer", cleansed=True)
        relation = database_system.database.relation("customer")

        from repro.repair.incremental import IncrementalRepairer

        class RogueRepairer(IncrementalRepairer):
            # returns a repair touching a protected tuple; the monitor's
            # safety net (the inherited verify_untouched) must reject it
            def repair_updates(self, rel, cfds, tids):
                protected_tid = [t for t in rel.tids() if t not in set(tids)][0]
                change = CellChange(
                    tid=protected_tid,
                    attribute="CNT",
                    old_value=rel.get(protected_tid)["CNT"],
                    new_value="Mordor",
                    cost=1.0,
                    reason="rogue",
                )
                return Repair(original=rel, repaired=rel.copy(), changes=[change])

        monitor._repairer = RogueRepairer()
        before = dict(relation.rows())
        with pytest.raises(RepairError):
            monitor.repair_affected([relation.tids()[0]])
        # the safety net fired before any change was applied
        assert dict(relation.rows()) == before


class TestFileBackedRecoveryUnderMonitor:
    """Satellite: reopen a file-backed store, attach a monitor, apply
    deltas, and assert parity with a fresh load of the same data."""

    @pytest.mark.parametrize("mode", ["native", "sql_delta"])
    def test_reopened_catalog_accepts_monitored_deltas(self, tmp_path, mode):
        path = tmp_path / "recover.db"
        original = generate_customers(50, seed=83)
        # session 1: load the store, then disconnect
        with SqliteBackend(path=str(path)) as backend:
            backend.add_relation(original.copy())
        # session 2: reopen — the catalog (schema + tid counter) is rebuilt
        # from the file — and monitor the recovered relation
        with SqliteBackend(path=str(path)) as reopened:
            assert reopened.relation_names() == ["customer"]
            database = Database()
            database.add_relation(reopened.to_relation("customer").copy())
            monitor = DataMonitor(
                database, "customer", paper_cfds(), backend=reopened, mode=mode
            )
            relation = database.relation("customer")
            template = relation.get(relation.tids()[0])
            monitor.apply_batch(
                [
                    Update.insert(dict(template, STR="A Brand New Street")),
                    Update.modify(relation.tids()[1], {"CNT": "Narnia"}),
                    Update.delete(relation.tids()[2]),
                ]
            )
            # the recovered tid counter kept the new insert off live tids
            assert max(dict(reopened.iter_rows("customer"))) == len(original)
            # the deltas landed in the recovered store, row for row
            assert dict(reopened.iter_rows("customer")) == dict(relation.rows())
            monitored_report = monitor.current_report()
            expected_rows = dict(relation.rows())
            monitor.close()
        # parity with a fresh bulk load of the same (updated) data
        with SqliteBackend() as fresh:
            fresh.add_relation(
                Relation.from_tid_rows(relation.schema, expected_rows.items())
            )
            oracle = ErrorDetector(fresh).detect("customer", paper_cfds())
        assert monitored_report.vio() == oracle.vio()
        assert monitored_report.dirty_tids() == oracle.dirty_tids()
        assert monitored_report.total_violations() > 0
        # session 3: the deltas were durably committed — a reopen still
        # matches the working store
        with SqliteBackend(path=str(path)) as again:
            assert dict(again.iter_rows("customer")) == expected_rows


class TestFileBackedCleanRoundTrip:
    def test_clean_ships_repair_as_per_tid_updates(self, tmp_path):
        path = tmp_path / "delta.db"
        config = SemandaqConfig(backend="sqlite", backend_options={"path": str(path)})
        from repro.datasets import inject_noise

        clean = generate_customers(80, seed=67)
        dirty = inject_noise(
            clean, rate=0.05, seed=68, attributes=["CNT", "CITY", "STR", "CC"]
        ).dirty
        with Semandaq(config=config) as system:
            system.register_relation(dirty.copy())
            system.add_cfds(paper_cfds())
            summary = system.clean("customer")
            assert summary["cells_changed"] > 0
            assert summary["violations_after"] <= summary["violations_before"]
            # one bulk load at registration; the repair travelled as UPDATEs
            assert system.full_sync_count == 1
            expected = dict(system.database.relation("customer").rows())
        # reopen the file: the per-tid UPDATEs were durably persisted
        reopened = SqliteBackend(path=str(path))
        assert dict(reopened.iter_rows("customer")) == expected
        reopened.close()
