"""The concurrent serving layer: pooled readers, one writer, no surprises.

These tests stress the PR 10 concurrency contract end to end:

* **snapshot parity** — N reader threads run ``detect`` /
  ``detect_for_tuples`` against a file-backed SQLite store while a writer
  toggles a fixed tuple set between two states with atomic
  ``DeltaBatch``es; because every batch moves the store from one complete
  state to the other, *every* concurrently produced report must equal one
  of the two serial-oracle reports — anything else means a reader saw a
  torn write;
* **thundering herd** — a ``threading.Barrier`` releases every reader at
  the same instant into a quiescent store, and all reports must equal the
  serial oracle exactly;
* **race-regression pins** — the prepared-plan cache and the
  ``MetricsRegistry`` never raise or drop counts under contention, pool
  exhaustion blocks (bounded by a timeout that raises
  :class:`PoolTimeoutError`), and ``close()`` leaves no file descriptor
  on the database path behind;
* a Hypothesis property replaying random thread-partitioned delta
  interleavings against a serialized oracle.
"""

import os
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import DeltaBatch, SqliteBackend
from repro.backends.pool import PoolTimeoutError, SqliteReaderPool
from repro.core.parser import parse_cfd
from repro.detection.detector import ErrorDetector
from repro.engine.relation import Relation
from repro.engine.types import AttributeDef, RelationSchema
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import Telemetry

SCHEMA = RelationSchema(
    "items",
    [AttributeDef("GRP"), AttributeDef("VAL"), AttributeDef("TAG")],
)

#: CFD under test: within one GRP group every VAL must agree, and the
#: constant pattern pins TAG for GRP=g0 tuples
CFDS_TEXT = [
    "items: [GRP=_] -> [VAL=_]",
    "items: [GRP='g0'] -> [TAG='ok']",
]

#: tids the writer toggles between state A and state B
TOGGLE_TIDS = list(range(0, 8))


def _cfds():
    return [parse_cfd(text) for text in CFDS_TEXT]


def _rows(state: str):
    """60 rows; the toggled tids flip VAL (multi) and TAG (single) together."""
    rows = []
    for tid in range(60):
        group = f"g{tid % 6}"
        if state == "B" and tid in TOGGLE_TIDS:
            rows.append({"GRP": group, "VAL": f"other-{tid}", "TAG": "bad"})
        else:
            rows.append({"GRP": group, "VAL": f"val-{tid % 6}", "TAG": "ok"})
    return rows


def _toggle_batch(state: str) -> DeltaBatch:
    """One atomic batch moving the toggled tids to ``state``."""
    batch = DeltaBatch("items")
    rows = _rows(state)
    for tid in TOGGLE_TIDS:
        batch.record_update(tid, dict(rows[tid]))
    return batch


def _file_backend(tmp_path, name="concurrent.db", **options) -> SqliteBackend:
    backend = SqliteBackend(path=str(tmp_path / name), **options)
    backend.add_relation(Relation.from_rows(SCHEMA, _rows("A")))
    return backend


def _oracle_reports(tmp_path):
    """Serial single-threaded reports for both toggle states."""
    oracles = {}
    for state in ("A", "B"):
        backend = SqliteBackend(path=str(tmp_path / f"oracle_{state}.db"))
        backend.add_relation(Relation.from_rows(SCHEMA, _rows(state)))
        detector = ErrorDetector(backend)
        oracles[state] = {
            "detect": detector.detect("items", _cfds()),
            "for_tuples": detector.detect_for_tuples(
                "items", _cfds(), TOGGLE_TIDS
            ),
        }
        backend.close()
    return oracles


class TestSnapshotParityUnderWrites:
    def test_readers_see_state_a_or_state_b_never_a_mix(self, tmp_path):
        """The headline stress: concurrent reports equal a serial oracle.

        The writer alternates complete A->B and B->A batches; each batch
        is one SQLite transaction, so any snapshot-consistent reader must
        produce exactly oracle(A) or oracle(B).  A report equal to
        neither means a detection observed a half-applied batch.
        """
        oracles = _oracle_reports(tmp_path)
        assert oracles["A"]["detect"] != oracles["B"]["detect"]
        backend = _file_backend(tmp_path)
        detector = ErrorDetector(backend)
        stop = threading.Event()
        failures = []

        def writer():
            state = "B"
            while not stop.is_set():
                backend.apply_delta_batch("items", _toggle_batch(state))
                state = "A" if state == "B" else "B"

        def reader(use_restricted: bool):
            kind = "for_tuples" if use_restricted else "detect"
            try:
                for _ in range(12):
                    if use_restricted:
                        report = detector.detect_for_tuples(
                            "items", _cfds(), TOGGLE_TIDS
                        )
                    else:
                        report = detector.detect("items", _cfds())
                    if report not in (
                        oracles["A"][kind],
                        oracles["B"][kind],
                    ):
                        failures.append((kind, report))
            except Exception as exc:  # pragma: no cover - failure detail
                failures.append((kind, exc))

        threads = [
            threading.Thread(target=reader, args=(index % 2 == 0,))
            for index in range(4)
        ]
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        writer_thread.join()
        backend.close()
        assert failures == []

    def test_thundering_herd_matches_serial_oracle(self, tmp_path):
        """A Barrier releases every reader at once into a quiescent store."""
        backend = _file_backend(tmp_path)
        detector = ErrorDetector(backend)
        expected = detector.detect("items", _cfds())
        readers = 8
        barrier = threading.Barrier(readers)
        results = [None] * readers
        failures = []

        def reader(slot: int):
            try:
                barrier.wait(timeout=30)
                results[slot] = detector.detect("items", _cfds())
            except Exception as exc:  # pragma: no cover - failure detail
                failures.append(exc)

        threads = [
            threading.Thread(target=reader, args=(slot,))
            for slot in range(readers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        backend.close()
        assert failures == []
        assert all(report == expected for report in results)

    def test_tuple_count_is_snapshot_consistent_under_inserts(self, tmp_path):
        """``tuple_count`` is read inside the same snapshot as the queries."""
        backend = _file_backend(tmp_path)
        detector = ErrorDetector(backend)
        stop = threading.Event()
        failures = []

        def writer():
            tid = 1000
            while not stop.is_set():
                batch = DeltaBatch("items")
                batch.record_insert(
                    tid, {"GRP": f"solo-{tid}", "VAL": "x", "TAG": "ok"}
                )
                backend.apply_delta_batch("items", batch)
                tid += 1

        def reader():
            try:
                for _ in range(15):
                    report = detector.detect("items", _cfds())
                    # inserts are clean singletons: the violation set never
                    # changes, only the count grows
                    if report.tuple_count < 60:
                        failures.append(report.tuple_count)
            except Exception as exc:  # pragma: no cover - failure detail
                failures.append(exc)

        writer_thread = threading.Thread(target=writer)
        reader_threads = [threading.Thread(target=reader) for _ in range(3)]
        writer_thread.start()
        for thread in reader_threads:
            thread.start()
        for thread in reader_threads:
            thread.join()
        stop.set()
        writer_thread.join()
        backend.close()
        assert failures == []


class TestThreadedDeltaReplayProperty:
    # tmp_path is per-test, not per-example: each example isolates itself
    # in a fresh subdirectory, so reusing the fixture is safe
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        partitions=st.lists(
            st.lists(
                st.tuples(st.integers(0, 9), st.text("abc", min_size=1, max_size=3)),
                min_size=1,
                max_size=5,
            ),
            min_size=2,
            max_size=4,
        )
    )
    def test_threaded_deltas_equal_serialized_replay(self, tmp_path, partitions):
        """Thread-partitioned single-tid deltas commute across threads.

        Each thread owns a disjoint tid range (thread ``i`` writes tids
        ``100*i .. 100*i+9``), so the final store is order-independent:
        it must equal replaying every delta serially, whatever
        interleaving the scheduler produced — while reader threads churn
        detections over the same store.
        """
        run_dir = tmp_path / f"prop_{len(os.listdir(tmp_path))}"
        run_dir.mkdir()
        backend = _file_backend(run_dir)
        detector = ErrorDetector(backend)
        failures = []
        barrier = threading.Barrier(len(partitions) + 1)

        def delta_writer(thread_index: int, ops):
            try:
                barrier.wait(timeout=30)
                for offset, value in ops:
                    tid = 100 * (thread_index + 1) + offset
                    batch = DeltaBatch("items")
                    if backend.execute(
                        "SELECT 1 FROM items WHERE _tid = ?", [tid]
                    ):
                        batch.record_update(tid, {"VAL": value})
                    else:
                        batch.record_insert(
                            tid,
                            {"GRP": f"p{thread_index}", "VAL": value, "TAG": "ok"},
                        )
                    backend.apply_delta_batch("items", batch)
            except Exception as exc:  # pragma: no cover - failure detail
                failures.append(exc)

        def churn_reader():
            try:
                barrier.wait(timeout=30)
                for _ in range(5):
                    detector.detect("items", _cfds())
            except Exception as exc:  # pragma: no cover - failure detail
                failures.append(exc)

        threads = [
            threading.Thread(target=delta_writer, args=(index, ops))
            for index, ops in enumerate(partitions)
        ]
        threads.append(threading.Thread(target=churn_reader))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []

        oracle = SqliteBackend(path=str(run_dir / "replay.db"))
        oracle.add_relation(Relation.from_rows(SCHEMA, _rows("A")))
        for index, ops in enumerate(partitions):
            for offset, value in ops:
                tid = 100 * (index + 1) + offset
                batch = DeltaBatch("items")
                if oracle.execute("SELECT 1 FROM items WHERE _tid = ?", [tid]):
                    batch.record_update(tid, {"VAL": value})
                else:
                    batch.record_insert(
                        tid, {"GRP": f"p{index}", "VAL": value, "TAG": "ok"}
                    )
                oracle.apply_delta_batch("items", batch)
        assert dict(backend.iter_rows("items")) == dict(oracle.iter_rows("items"))
        backend.close()
        oracle.close()


class TestRaceRegressionPins:
    def test_plan_cache_contention_never_raises_and_counts_add_up(self, tmp_path):
        backend = _file_backend(tmp_path)
        telemetry = Telemetry(enabled=True)
        detector = ErrorDetector(backend, telemetry=telemetry)
        readers = 6
        rounds = 8
        barrier = threading.Barrier(readers)
        failures = []

        def reader():
            try:
                barrier.wait(timeout=30)
                for _ in range(rounds):
                    detector.detect("items", _cfds())
            except Exception as exc:  # pragma: no cover - failure detail
                failures.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(readers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        backend.close()
        assert failures == []
        generator = detector._generators["items"]
        lookups = generator.plan_cache_hits + generator.plan_cache_misses
        counters = telemetry.metrics.snapshot()["counters"]
        # no lookup lost under contention: the instance counters agree
        # with the registry counters and every detect's plans were served
        assert lookups == counters["plan_cache.hits"] + counters["plan_cache.misses"]
        assert generator.plan_cache_hits > 0

    def test_metrics_registry_totals_equal_single_thread_sum(self):
        registry = MetricsRegistry()
        threads = 8
        increments = 5000
        barrier = threading.Barrier(threads)

        def worker():
            barrier.wait(timeout=30)
            counter = registry.counter("contended.total")
            for _ in range(increments):
                counter.inc()
                registry.histogram("contended.ms").observe(1.0)

        workers = [threading.Thread(target=worker) for _ in range(threads)]
        for worker_thread in workers:
            worker_thread.start()
        for worker_thread in workers:
            worker_thread.join()
        assert registry.counter_value("contended.total") == threads * increments
        histogram = registry.histogram("contended.ms")
        assert histogram.count == threads * increments
        assert histogram.total == pytest.approx(threads * increments * 1.0)

    def test_pool_exhaustion_blocks_until_release(self, tmp_path):
        backend = _file_backend(tmp_path, pool_size=1)
        order = []

        def holder():
            with backend.read_connection():
                order.append("held")
                time.sleep(0.2)
            order.append("released")

        def waiter():
            time.sleep(0.05)  # let the holder win the first checkout
            with backend.read_connection(timeout=5.0):
                order.append("acquired")

        threads = [threading.Thread(target=holder), threading.Thread(target=waiter)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert order == ["held", "released", "acquired"]
        backend.close()

    def test_pool_exhaustion_timeout_raises(self, tmp_path):
        backend = _file_backend(tmp_path, pool_size=1)
        release = threading.Event()
        holding = threading.Event()
        outcome = {}

        def holder():
            with backend.read_connection():
                holding.set()
                release.wait(timeout=10)

        thread = threading.Thread(target=holder)
        thread.start()
        assert holding.wait(timeout=5)
        started = time.perf_counter()
        with pytest.raises(PoolTimeoutError) as excinfo:
            with backend.read_connection(timeout=0.1):
                outcome["acquired"] = True  # pragma: no cover
        elapsed = time.perf_counter() - started
        release.set()
        thread.join()
        assert "acquired" not in outcome
        assert 0.05 <= elapsed < 5.0
        assert excinfo.value.size == 1
        assert backend.pool_stats()["pool.timeouts"] == 1
        backend.close()

    def test_pool_rejects_nonpositive_size(self):
        with pytest.raises(Exception):
            SqliteReaderPool(0, lambda: None)


def _open_fds_for(path: str) -> int:
    fd_dir = "/proc/self/fd"
    if not os.path.isdir(fd_dir):  # pragma: no cover - non-procfs platform
        pytest.skip("requires /proc-style fd introspection")
    count = 0
    for entry in os.listdir(fd_dir):
        try:
            target = os.readlink(os.path.join(fd_dir, entry))
        except OSError:
            continue
        if target.startswith(path):
            count += 1
    return count


class TestCloseDrainsPool:
    def test_close_releases_every_reader_fd(self, tmp_path):
        backend = _file_backend(tmp_path, name="fdcount.db", pool_size=4)
        detector = ErrorDetector(backend)
        path = str(tmp_path / "fdcount.db")
        barrier = threading.Barrier(4)

        def reader():
            barrier.wait(timeout=30)
            detector.detect("items", _cfds())

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert backend.pool_stats()["pool.open"] >= 1
        assert _open_fds_for(path) >= 2  # writer + at least one pooled reader
        backend.close()
        assert _open_fds_for(path) == 0
        assert backend.pool_stats()["pool.open"] == 0

    def test_context_manager_exit_drains_pool(self, tmp_path):
        path = str(tmp_path / "ctx.db")
        with SqliteBackend(path=path) as backend:
            backend.add_relation(Relation.from_rows(SCHEMA, _rows("A")))
            with backend.read_connection():
                backend.execute("SELECT COUNT(*) AS c FROM items")
        assert _open_fds_for(path) == 0

    def test_close_is_idempotent(self, tmp_path):
        backend = _file_backend(tmp_path)
        backend.close()
        backend.close()

    def test_connections_checked_out_at_close_are_closed_on_release(
        self, tmp_path
    ):
        backend = _file_backend(tmp_path, name="late.db", pool_size=2)
        path = str(tmp_path / "late.db")
        entered = threading.Event()
        finish = threading.Event()

        def late_reader():
            with backend.read_connection():
                entered.set()
                finish.wait(timeout=10)

        thread = threading.Thread(target=late_reader)
        thread.start()
        assert entered.wait(timeout=5)
        backend.close()
        finish.set()
        thread.join()
        assert _open_fds_for(path) == 0


class TestPoolModeSelection:
    def test_memory_database_disables_pool(self):
        backend = SqliteBackend()
        assert backend.pool_stats() == {}
        backend.add_relation(Relation.from_rows(SCHEMA, _rows("A")))
        report = ErrorDetector(backend).detect("items", _cfds())
        assert report.tuple_count == 60
        backend.close()

    def test_pool_size_zero_forces_single_connection(self, tmp_path):
        backend = _file_backend(tmp_path, pool_size=0)
        assert backend.pool_stats() == {}
        detector = ErrorDetector(backend)
        expected = detector.detect("items", _cfds())
        failures = []

        def reader():
            try:
                for _ in range(5):
                    if detector.detect("items", _cfds()) != expected:
                        failures.append("mismatch")  # pragma: no cover
            except Exception as exc:  # pragma: no cover - failure detail
                failures.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        backend.close()
        assert failures == []
