"""The DeltaBatch changeset: coalescing rules and grouped backend application.

``DeltaBatch`` is the first-class changeset of the update path: it records
the *net* per-tuple effect of an update batch and ships to a backend in one
``apply_delta_batch`` round trip — a single transaction on SQLite
(``executemany`` per op kind, one commit) instead of one commit per
statement.  These tests pin the coalescing algebra, the cross-backend
application parity, SQLite's transactional atomicity and single-commit
behaviour, and the backend context-manager protocol.
"""

import sqlite3

import pytest

from repro.backends import DeltaBatch, MemoryBackend, SqliteBackend
from repro.engine.relation import Relation
from repro.engine.types import AttributeDef, DataType, RelationSchema
from repro.errors import BackendError, ConstraintViolationError, UnknownTupleError


SCHEMA = RelationSchema(
    "items",
    [
        AttributeDef("NAME"),
        AttributeDef("QTY", DataType.INTEGER),
        AttributeDef("OK", DataType.BOOLEAN),
    ],
)

ROWS = [
    {"NAME": "bolt", "QTY": 5, "OK": True},
    {"NAME": "nut", "QTY": 7, "OK": False},
    {"NAME": "washer", "QTY": 2, "OK": True},
]


def _loaded(backend):
    backend.add_relation(Relation.from_rows(SCHEMA, ROWS))
    return backend


@pytest.fixture(params=["memory", "sqlite"])
def backend(request):
    if request.param == "memory":
        instance = _loaded(MemoryBackend())
    else:
        instance = _loaded(SqliteBackend())
    yield instance
    instance.close()


class TestCoalescing:
    def test_insert_then_update_collapses_to_one_insert(self):
        batch = DeltaBatch("items")
        batch.record_insert(3, {"NAME": "screw", "QTY": 1, "OK": True})
        batch.record_update(3, {"QTY": 9})
        assert batch.inserts == [(3, {"NAME": "screw", "QTY": 9, "OK": True})]
        assert batch.updates == []
        assert batch.deletes == []
        assert len(batch) == 1
        assert batch.statement_count == 1

    def test_insert_then_delete_cancels_out(self):
        batch = DeltaBatch("items")
        batch.record_insert(3, {"NAME": "screw", "QTY": 1, "OK": True})
        batch.record_delete(3)
        assert batch.is_empty()
        # the tid is free again: a later insert is a plain insert
        batch.record_insert(3, {"NAME": "pin", "QTY": 2, "OK": False})
        assert batch.inserts == [(3, {"NAME": "pin", "QTY": 2, "OK": False})]

    def test_updates_merge(self):
        batch = DeltaBatch("items")
        batch.record_update(0, {"QTY": 9})
        batch.record_update(0, {"OK": False, "QTY": 11})
        assert batch.updates == [(0, {"QTY": 11, "OK": False})]
        assert batch.statement_count == 1

    def test_update_then_delete_is_a_delete(self):
        batch = DeltaBatch("items")
        batch.record_update(0, {"QTY": 9})
        batch.record_delete(0)
        assert batch.deletes == [0]
        assert batch.updates == []

    def test_delete_then_insert_is_a_replace(self):
        batch = DeltaBatch("items")
        batch.record_delete(0)
        batch.record_insert(0, {"NAME": "new bolt", "QTY": 1, "OK": False})
        assert batch.deletes == [0]
        assert batch.inserts == [(0, {"NAME": "new bolt", "QTY": 1, "OK": False})]
        assert batch.statement_count == 2
        assert len(batch) == 1
        # updates keep merging into the replace's insert half
        batch.record_update(0, {"QTY": 4})
        assert batch.inserts == [(0, {"NAME": "new bolt", "QTY": 4, "OK": False})]

    def test_empty_update_is_a_no_op(self):
        batch = DeltaBatch("items")
        batch.record_update(0, {})
        assert batch.is_empty()

    def test_illegal_sequences_raise(self):
        batch = DeltaBatch("items")
        batch.record_insert(1, {"NAME": "x", "QTY": 1, "OK": True})
        with pytest.raises(BackendError):
            batch.record_insert(1, {"NAME": "y", "QTY": 2, "OK": True})
        batch.record_delete(2)
        with pytest.raises(BackendError):
            batch.record_update(2, {"QTY": 9})
        with pytest.raises(BackendError):
            batch.record_delete(2)

    def test_grouped_updates_share_statement_shapes(self):
        batch = DeltaBatch("items")
        batch.record_update(0, {"QTY": 1})
        batch.record_update(1, {"QTY": 2})
        batch.record_update(2, {"OK": False, "QTY": 3})
        groups = dict(batch.grouped_updates())
        assert set(groups) == {("QTY",), ("OK", "QTY")}
        assert groups[("QTY",)] == [(0, {"QTY": 1}), (1, {"QTY": 2})]


def _mixed_batch():
    """Insert + update + delete + replace, all in one changeset."""
    batch = DeltaBatch("items")
    batch.record_insert(3, {"NAME": "screw", "QTY": 9, "OK": False})
    batch.record_update(3, {"QTY": 10})
    batch.record_update(0, {"QTY": 6})
    batch.record_delete(1)
    batch.record_delete(2)
    batch.record_insert(2, {"NAME": "new washer", "QTY": 1, "OK": False})
    return batch


class TestApplyDeltaBatch:
    def test_application_matches_per_statement_ops(self, backend):
        backend.apply_delta_batch("items", _mixed_batch())
        oracle = _loaded(MemoryBackend())
        oracle.insert_row("items", {"NAME": "screw", "QTY": 10, "OK": False}, tid=3)
        oracle.update_row("items", 0, {"QTY": 6})
        oracle.delete_row("items", 1)
        oracle.delete_row("items", 2)
        oracle.insert_row("items", {"NAME": "new washer", "QTY": 1, "OK": False}, tid=2)
        assert list(backend.iter_rows("items")) == list(oracle.iter_rows("items"))

    def test_memory_and_sqlite_agree(self):
        memory, sqlite_backend = _loaded(MemoryBackend()), _loaded(SqliteBackend())
        for instance in (memory, sqlite_backend):
            instance.apply_delta_batch("items", _mixed_batch())
        assert list(memory.iter_rows("items")) == list(sqlite_backend.iter_rows("items"))
        sqlite_backend.close()

    def test_empty_batch_is_a_no_op(self, backend):
        before = list(backend.iter_rows("items"))
        backend.apply_delta_batch("items", DeltaBatch("items"))
        assert list(backend.iter_rows("items")) == before

    def test_tid_counter_advances_past_batch_inserts(self, backend):
        batch = DeltaBatch("items")
        batch.record_insert(10, {"NAME": "nail", "QTY": 1, "OK": True})
        backend.apply_delta_batch("items", batch)
        assert backend.insert_row("items", {"NAME": "pin", "QTY": 2, "OK": True}) == 11

    def test_sqlite_batch_is_atomic_on_unknown_tid(self):
        backend = _loaded(SqliteBackend())
        batch = DeltaBatch("items")
        batch.record_update(0, {"QTY": 99})
        batch.record_update(42, {"QTY": 1})  # no such tuple
        before = list(backend.iter_rows("items"))
        with pytest.raises(UnknownTupleError) as excinfo:
            backend.apply_delta_batch("items", batch)
        # the error names the actual missing tid, like the single-op path
        assert excinfo.value.tid == 42
        # the whole transaction rolled back: the valid update did not stick
        assert list(backend.iter_rows("items")) == before
        backend.close()

    def test_sqlite_batch_reports_missing_delete_tid(self):
        backend = _loaded(SqliteBackend())
        batch = DeltaBatch("items")
        batch.record_delete(0)
        batch.record_delete(42)  # no such tuple
        with pytest.raises(UnknownTupleError) as excinfo:
            backend.apply_delta_batch("items", batch)
        assert excinfo.value.tid == 42
        assert backend.row_count("items") == 3  # rolled back
        backend.close()

    def test_sqlite_batch_is_atomic_on_duplicate_insert(self):
        backend = _loaded(SqliteBackend())
        batch = DeltaBatch("items")
        batch.record_delete(1)
        batch.record_insert(0, {"NAME": "dup", "QTY": 1, "OK": True})  # tid 0 live
        before = list(backend.iter_rows("items"))
        with pytest.raises(ConstraintViolationError):
            backend.apply_delta_batch("items", batch)
        assert list(backend.iter_rows("items")) == before
        backend.close()

    def test_sqlite_batch_commits_exactly_once(self):
        backend = _loaded(SqliteBackend())
        commits = []

        class CountingConnection:
            def __init__(self, conn):
                self._conn = conn

            def commit(self):
                commits.append(1)
                return self._conn.commit()

            def __getattr__(self, attribute):
                return getattr(self._conn, attribute)

        backend._conn = CountingConnection(backend._conn)
        backend.apply_delta_batch("items", _mixed_batch())
        assert sum(commits) == 1
        backend.close()


class TestBackendContextManager:
    def test_sqlite_backend_closes_on_exit(self):
        with SqliteBackend() as backend:
            _loaded(backend)
            assert backend.row_count("items") == 3
        with pytest.raises(sqlite3.ProgrammingError):
            backend._conn.execute("SELECT 1")

    def test_memory_backend_supports_with(self):
        with MemoryBackend() as backend:
            _loaded(backend)
            assert backend.row_count("items") == 3


class TestExecuteCommitDiscipline:
    def test_select_does_not_commit(self):
        backend = _loaded(SqliteBackend())
        commits = []

        class CountingConnection:
            def __init__(self, conn):
                self._conn = conn

            def commit(self):
                commits.append(1)
                return self._conn.commit()

            def __getattr__(self, attribute):
                return getattr(self._conn, attribute)

        backend._conn = CountingConnection(backend._conn)
        rows = backend.execute("SELECT COUNT(*) AS n FROM items")
        assert rows == [{"n": 3}]
        assert commits == []
        backend.close()

    def test_dml_through_execute_still_commits(self, tmp_path):
        path = tmp_path / "commit.db"
        backend = SqliteBackend(path=str(path))
        backend.add_relation(Relation.from_rows(SCHEMA, ROWS))
        backend.execute("UPDATE items SET QTY = 99 WHERE _tid = 0")
        backend.close()
        reopened = SqliteBackend(path=str(path))
        assert reopened.get_row("items", 0)["QTY"] == 99
        reopened.close()

    def test_row_returning_dml_commits(self, tmp_path):
        # keying the commit decision on cursor.description alone would skip
        # the commit for DML that returns rows
        if sqlite3.sqlite_version_info < (3, 35):
            pytest.skip("RETURNING needs SQLite >= 3.35")
        path = tmp_path / "returning.db"
        backend = SqliteBackend(path=str(path))
        backend.add_relation(Relation.from_rows(SCHEMA, ROWS))
        rows = backend.execute("UPDATE items SET QTY = 50 WHERE _tid = 1 RETURNING QTY")
        assert rows == [{"QTY": 50}]
        backend.close()
        reopened = SqliteBackend(path=str(path))
        assert reopened.get_row("items", 1)["QTY"] == 50
        reopened.close()
