"""The DeltaBatch changeset: coalescing rules and grouped backend application.

``DeltaBatch`` is the first-class changeset of the update path: it records
the *net* per-tuple effect of an update batch and ships to a backend in one
``apply_delta_batch`` round trip — a single transaction on SQLite
(``executemany`` per op kind, one commit) instead of one commit per
statement.  These tests pin the coalescing algebra, the cross-backend
application parity, SQLite's transactional atomicity and single-commit
behaviour, and the backend context-manager protocol.
"""

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import DeltaBatch, MemoryBackend, SqliteBackend
from repro.engine.relation import Relation
from repro.engine.types import AttributeDef, DataType, RelationSchema
from repro.errors import BackendError, ConstraintViolationError, UnknownTupleError


SCHEMA = RelationSchema(
    "items",
    [
        AttributeDef("NAME"),
        AttributeDef("QTY", DataType.INTEGER),
        AttributeDef("OK", DataType.BOOLEAN),
    ],
)

ROWS = [
    {"NAME": "bolt", "QTY": 5, "OK": True},
    {"NAME": "nut", "QTY": 7, "OK": False},
    {"NAME": "washer", "QTY": 2, "OK": True},
]


def _loaded(backend):
    backend.add_relation(Relation.from_rows(SCHEMA, ROWS))
    return backend


@pytest.fixture(params=["memory", "sqlite"])
def backend(request):
    if request.param == "memory":
        instance = _loaded(MemoryBackend())
    else:
        instance = _loaded(SqliteBackend())
    yield instance
    instance.close()


class TestCoalescing:
    def test_insert_then_update_collapses_to_one_insert(self):
        batch = DeltaBatch("items")
        batch.record_insert(3, {"NAME": "screw", "QTY": 1, "OK": True})
        batch.record_update(3, {"QTY": 9})
        assert batch.inserts == [(3, {"NAME": "screw", "QTY": 9, "OK": True})]
        assert batch.updates == []
        assert batch.deletes == []
        assert len(batch) == 1
        assert batch.statement_count == 1

    def test_insert_then_delete_cancels_out(self):
        batch = DeltaBatch("items")
        batch.record_insert(3, {"NAME": "screw", "QTY": 1, "OK": True})
        batch.record_delete(3)
        assert batch.is_empty()
        # the tid is free again: a later insert is a plain insert
        batch.record_insert(3, {"NAME": "pin", "QTY": 2, "OK": False})
        assert batch.inserts == [(3, {"NAME": "pin", "QTY": 2, "OK": False})]

    def test_updates_merge(self):
        batch = DeltaBatch("items")
        batch.record_update(0, {"QTY": 9})
        batch.record_update(0, {"OK": False, "QTY": 11})
        assert batch.updates == [(0, {"QTY": 11, "OK": False})]
        assert batch.statement_count == 1

    def test_update_then_delete_is_a_delete(self):
        batch = DeltaBatch("items")
        batch.record_update(0, {"QTY": 9})
        batch.record_delete(0)
        assert batch.deletes == [0]
        assert batch.updates == []

    def test_delete_then_insert_is_a_replace(self):
        batch = DeltaBatch("items")
        batch.record_delete(0)
        batch.record_insert(0, {"NAME": "new bolt", "QTY": 1, "OK": False})
        assert batch.deletes == [0]
        assert batch.inserts == [(0, {"NAME": "new bolt", "QTY": 1, "OK": False})]
        assert batch.statement_count == 2
        assert len(batch) == 1
        # updates keep merging into the replace's insert half
        batch.record_update(0, {"QTY": 4})
        assert batch.inserts == [(0, {"NAME": "new bolt", "QTY": 4, "OK": False})]

    def test_empty_update_is_a_no_op(self):
        batch = DeltaBatch("items")
        batch.record_update(0, {})
        assert batch.is_empty()

    def test_illegal_sequences_raise(self):
        batch = DeltaBatch("items")
        batch.record_insert(1, {"NAME": "x", "QTY": 1, "OK": True})
        with pytest.raises(BackendError):
            batch.record_insert(1, {"NAME": "y", "QTY": 2, "OK": True})
        batch.record_delete(2)
        with pytest.raises(BackendError):
            batch.record_update(2, {"QTY": 9})
        with pytest.raises(BackendError):
            batch.record_delete(2)

    def test_grouped_updates_share_statement_shapes(self):
        batch = DeltaBatch("items")
        batch.record_update(0, {"QTY": 1})
        batch.record_update(1, {"QTY": 2})
        batch.record_update(2, {"OK": False, "QTY": 3})
        groups = dict(batch.grouped_updates())
        assert set(groups) == {("QTY",), ("OK", "QTY")}
        assert groups[("QTY",)] == [(0, {"QTY": 1}), (1, {"QTY": 2})]


def _mixed_batch():
    """Insert + update + delete + replace, all in one changeset."""
    batch = DeltaBatch("items")
    batch.record_insert(3, {"NAME": "screw", "QTY": 9, "OK": False})
    batch.record_update(3, {"QTY": 10})
    batch.record_update(0, {"QTY": 6})
    batch.record_delete(1)
    batch.record_delete(2)
    batch.record_insert(2, {"NAME": "new washer", "QTY": 1, "OK": False})
    return batch


class TestApplyDeltaBatch:
    def test_application_matches_per_statement_ops(self, backend):
        backend.apply_delta_batch("items", _mixed_batch())
        oracle = _loaded(MemoryBackend())
        oracle.insert_row("items", {"NAME": "screw", "QTY": 10, "OK": False}, tid=3)
        oracle.update_row("items", 0, {"QTY": 6})
        oracle.delete_row("items", 1)
        oracle.delete_row("items", 2)
        oracle.insert_row("items", {"NAME": "new washer", "QTY": 1, "OK": False}, tid=2)
        assert list(backend.iter_rows("items")) == list(oracle.iter_rows("items"))

    def test_memory_and_sqlite_agree(self):
        memory, sqlite_backend = _loaded(MemoryBackend()), _loaded(SqliteBackend())
        for instance in (memory, sqlite_backend):
            instance.apply_delta_batch("items", _mixed_batch())
        assert list(memory.iter_rows("items")) == list(sqlite_backend.iter_rows("items"))
        sqlite_backend.close()

    def test_empty_batch_is_a_no_op(self, backend):
        before = list(backend.iter_rows("items"))
        backend.apply_delta_batch("items", DeltaBatch("items"))
        assert list(backend.iter_rows("items")) == before

    def test_empty_coalesced_batch_opens_no_transaction(self):
        # a batch that nets out to nothing (insert + delete of the same
        # tid) must not touch the connection: no statements, no write
        # transaction, no commit
        backend = _loaded(SqliteBackend())
        batch = DeltaBatch("items")
        batch.record_insert(3, {"NAME": "ghost", "QTY": 1, "OK": True})
        batch.record_update(3, {"QTY": 2})
        batch.record_delete(3)
        assert batch.is_empty()
        statements, commits = [], []

        class CountingConnection:
            def __init__(self, conn):
                self._conn = conn

            def execute(self, sql, *args):
                statements.append(sql)
                return self._conn.execute(sql, *args)

            def executemany(self, sql, *args):
                statements.append(sql)
                return self._conn.executemany(sql, *args)

            def commit(self):
                commits.append(1)
                return self._conn.commit()

            def __getattr__(self, attribute):
                return getattr(self._conn, attribute)

        raw = backend._conn
        backend._conn = CountingConnection(raw)
        backend.apply_delta_batch("items", batch)
        assert statements == []
        assert commits == []
        assert not raw.in_transaction
        backend.close()

    def test_tid_counter_advances_past_batch_inserts(self, backend):
        batch = DeltaBatch("items")
        batch.record_insert(10, {"NAME": "nail", "QTY": 1, "OK": True})
        backend.apply_delta_batch("items", batch)
        assert backend.insert_row("items", {"NAME": "pin", "QTY": 2, "OK": True}) == 11

    def test_sqlite_batch_is_atomic_on_unknown_tid(self):
        backend = _loaded(SqliteBackend())
        batch = DeltaBatch("items")
        batch.record_update(0, {"QTY": 99})
        batch.record_update(42, {"QTY": 1})  # no such tuple
        before = list(backend.iter_rows("items"))
        with pytest.raises(UnknownTupleError) as excinfo:
            backend.apply_delta_batch("items", batch)
        # the error names the actual missing tid, like the single-op path
        assert excinfo.value.tid == 42
        # the whole transaction rolled back: the valid update did not stick
        assert list(backend.iter_rows("items")) == before
        backend.close()

    def test_sqlite_batch_reports_missing_delete_tid(self):
        backend = _loaded(SqliteBackend())
        batch = DeltaBatch("items")
        batch.record_delete(0)
        batch.record_delete(42)  # no such tuple
        with pytest.raises(UnknownTupleError) as excinfo:
            backend.apply_delta_batch("items", batch)
        assert excinfo.value.tid == 42
        assert backend.row_count("items") == 3  # rolled back
        backend.close()

    def test_sqlite_batch_is_atomic_on_duplicate_insert(self):
        backend = _loaded(SqliteBackend())
        batch = DeltaBatch("items")
        batch.record_delete(1)
        batch.record_insert(0, {"NAME": "dup", "QTY": 1, "OK": True})  # tid 0 live
        before = list(backend.iter_rows("items"))
        with pytest.raises(ConstraintViolationError):
            backend.apply_delta_batch("items", batch)
        assert list(backend.iter_rows("items")) == before
        backend.close()

    def test_sqlite_batch_commits_exactly_once(self):
        backend = _loaded(SqliteBackend())
        commits = []

        class CountingConnection:
            def __init__(self, conn):
                self._conn = conn

            def commit(self):
                commits.append(1)
                return self._conn.commit()

            def __getattr__(self, attribute):
                return getattr(self._conn, attribute)

        backend._conn = CountingConnection(backend._conn)
        backend.apply_delta_batch("items", _mixed_batch())
        assert sum(commits) == 1
        backend.close()


class TestBatchReplayProperty:
    """Random op sequences: one coalesced batch == raw one-by-one replay."""

    row_strategy = st.fixed_dictionaries(
        {
            "NAME": st.sampled_from(["bolt", "nut", "pin", None]),
            "QTY": st.one_of(st.integers(min_value=0, max_value=9), st.none()),
            "OK": st.one_of(st.booleans(), st.none()),
        }
    )

    def _draw_ops(self, data):
        """A random op sequence that is valid against the live relation."""
        live = {0, 1, 2}
        freed = []
        next_tid = 3
        ops = []
        for _ in range(data.draw(st.integers(min_value=1, max_value=10))):
            choices = ["insert"]
            if live:
                choices += ["delete", "update"]
            if freed:
                choices.append("reinsert")  # replace: delete then insert
            op = data.draw(st.sampled_from(choices))
            if op in ("insert", "reinsert"):
                tid = freed.pop() if op == "reinsert" else next_tid
                if op == "insert":
                    next_tid += 1
                ops.append(("insert", tid, data.draw(self.row_strategy)))
                live.add(tid)
            elif op == "delete":
                tid = data.draw(st.sampled_from(sorted(live)))
                live.remove(tid)
                freed.append(tid)
                ops.append(("delete", tid, None))
            else:
                tid = data.draw(st.sampled_from(sorted(live)))
                changes = data.draw(self.row_strategy)
                subset = data.draw(
                    st.sets(st.sampled_from(["NAME", "QTY", "OK"]), min_size=1)
                )
                ops.append(
                    ("update", tid, {attr: changes[attr] for attr in subset})
                )
        return ops, live

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_coalesced_batch_equals_raw_replay(self, data):
        ops, live = self._draw_ops(data)
        batch_backend = _loaded(SqliteBackend())
        replay_backend = _loaded(SqliteBackend())
        memory_replay = _loaded(MemoryBackend())
        batch = DeltaBatch("items")
        for op, tid, payload in ops:
            for backend in (replay_backend, memory_replay):
                if op == "insert":
                    backend.insert_row("items", payload, tid=tid)
                elif op == "delete":
                    backend.delete_row("items", tid)
                else:
                    backend.update_row("items", tid, payload)
            if op == "insert":
                batch.record_insert(tid, payload)
            elif op == "delete":
                batch.record_delete(tid)
            else:
                batch.record_update(tid, payload)
        batch_backend.apply_delta_batch("items", batch)
        expected = list(replay_backend.iter_rows("items"))
        assert list(batch_backend.iter_rows("items")) == expected
        assert list(memory_replay.iter_rows("items")) == expected

        # rollback path: a poisoned batch (one op hits a missing tid) must
        # leave the backend exactly as it was — none of its valid ops stick
        before = list(batch_backend.iter_rows("items"))
        poison = DeltaBatch("items")
        if live:
            poison.record_update(min(live), {"QTY": 42})
        poison.record_update(999, {"QTY": 1})
        with pytest.raises(UnknownTupleError):
            batch_backend.apply_delta_batch("items", poison)
        assert list(batch_backend.iter_rows("items")) == before
        for backend in (batch_backend, replay_backend):
            backend.close()

    def test_failed_mirror_batch_sets_desync_and_rolls_back(self):
        # the detector-level rollback contract: a batch that fails on the
        # mirror marks the desync and the mirror keeps its pre-batch rows
        # (the transaction rolled the valid half of the batch back)
        from repro.detection.incremental import IncrementalDetector
        from repro.engine.database import Database

        database = Database()
        database.add_relation(Relation.from_rows(SCHEMA, ROWS))
        mirror = _loaded(SqliteBackend())
        detector = IncrementalDetector(database, "items", [], mirror=mirror)
        # desync the mirror behind the detector's back: tid 2 disappears
        mirror._conn.execute('DELETE FROM "items" WHERE _tid = 2')
        mirror._conn.commit()
        before = list(mirror.iter_rows("items"))
        with pytest.raises(UnknownTupleError):
            with detector.batch():
                detector.update(0, {"QTY": 77})
                detector.update(2, {"QTY": 88})  # missing in the mirror
        assert detector.mirror_desynced
        assert list(mirror.iter_rows("items")) == before
        mirror.close()


class TestBackendContextManager:
    def test_sqlite_backend_closes_on_exit(self):
        with SqliteBackend() as backend:
            _loaded(backend)
            assert backend.row_count("items") == 3
        with pytest.raises(sqlite3.ProgrammingError):
            backend._conn.execute("SELECT 1")

    def test_memory_backend_supports_with(self):
        with MemoryBackend() as backend:
            _loaded(backend)
            assert backend.row_count("items") == 3


class TestExecuteCommitDiscipline:
    def test_select_does_not_commit(self):
        backend = _loaded(SqliteBackend())
        commits = []

        class CountingConnection:
            def __init__(self, conn):
                self._conn = conn

            def commit(self):
                commits.append(1)
                return self._conn.commit()

            def __getattr__(self, attribute):
                return getattr(self._conn, attribute)

        backend._conn = CountingConnection(backend._conn)
        rows = backend.execute("SELECT COUNT(*) AS n FROM items")
        assert rows == [{"n": 3}]
        assert commits == []
        backend.close()

    def test_dml_through_execute_still_commits(self, tmp_path):
        path = tmp_path / "commit.db"
        backend = SqliteBackend(path=str(path))
        backend.add_relation(Relation.from_rows(SCHEMA, ROWS))
        backend.execute("UPDATE items SET QTY = 99 WHERE _tid = 0")
        backend.close()
        reopened = SqliteBackend(path=str(path))
        assert reopened.get_row("items", 0)["QTY"] == 99
        reopened.close()

    def test_row_returning_dml_commits(self, tmp_path):
        # keying the commit decision on cursor.description alone would skip
        # the commit for DML that returns rows
        if sqlite3.sqlite_version_info < (3, 35):
            pytest.skip("RETURNING needs SQLite >= 3.35")
        path = tmp_path / "returning.db"
        backend = SqliteBackend(path=str(path))
        backend.add_relation(Relation.from_rows(SCHEMA, ROWS))
        rows = backend.execute("UPDATE items SET QTY = 50 WHERE _tid = 1 RETURNING QTY")
        assert rows == [{"QTY": 50}]
        backend.close()
        reopened = SqliteBackend(path=str(path))
        assert reopened.get_row("items", 1)["QTY"] == 50
        reopened.close()
