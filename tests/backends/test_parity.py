"""Multi-path detection parity and the SQLite end-to-end workflow.

The acceptance bar of the backend subsystem: the native detector, the
SQL-based detector on the embedded engine, the SQL-based detector on
SQLite, and both incremental modes (``native`` Python state and the
backend-resident ``sql_delta`` re-checks) must produce identical violation
reports on the dirty-customer workload — the same ``vio()`` maps and the
same dirty tids.

Run with ``SEMANDAQ_SQLITE_MODE=file`` to exercise every SQLite backend in
this suite against a tmp-path database file instead of ``:memory:`` (see
``conftest.py``); CI does both.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Semandaq, SemandaqConfig
from repro.backends import MemoryBackend, SqliteBackend
from repro.core.cfd import CFD
from repro.core.pattern import PatternTuple
from repro.datasets import generate_customers, inject_noise, paper_cfds
from repro.detection.detector import ErrorDetector
from repro.detection.incremental import IncrementalDetector
from repro.engine.csvio import dump_csv
from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.engine.types import RelationSchema


@pytest.fixture(scope="module")
def dirty_customers():
    clean = generate_customers(300, seed=17)
    noise = inject_noise(
        clean, rate=0.05, seed=18, attributes=["CNT", "CITY", "STR", "CC"]
    )
    return noise.dirty


@pytest.fixture(scope="module")
def cfds():
    return paper_cfds()


class TestThreeWayParity:
    def test_native_memory_sql_and_sqlite_sql_agree(
        self, dirty_customers, cfds, sqlite_backend_factory
    ):
        database = Database()
        database.add_relation(dirty_customers.copy())
        native = ErrorDetector(database, use_sql=False).detect("customer", cfds)
        memory_sql = ErrorDetector(database, use_sql=True).detect("customer", cfds)

        sqlite_backend = sqlite_backend_factory()
        sqlite_backend.add_relation(dirty_customers.copy())
        sqlite_sql = ErrorDetector(sqlite_backend, use_sql=True).detect(
            "customer", cfds
        )
        sqlite_backend.close()

        assert native.vio() == memory_sql.vio() == sqlite_sql.vio()
        assert (
            native.dirty_tids()
            == memory_sql.dirty_tids()
            == sqlite_sql.dirty_tids()
        )
        assert native.total_violations() == sqlite_sql.total_violations() > 0

    def test_detector_accepts_backend_or_database(self, dirty_customers, cfds):
        database = Database()
        database.add_relation(dirty_customers.copy())
        from_db = ErrorDetector(database).detect("customer", cfds)
        from_backend = ErrorDetector(MemoryBackend(database)).detect("customer", cfds)
        assert from_db.vio() == from_backend.vio()

    def test_sqlite_detection_uses_its_dialect(
        self, dirty_customers, cfds, sqlite_backend_factory
    ):
        backend = sqlite_backend_factory()
        backend.add_relation(dirty_customers.copy())
        detector = ErrorDetector(backend)
        detector.detect("customer", cfds)
        backend.close()
        assert detector.last_sql
        assert all("CONCAT" not in sql for sql in detector.last_sql)

    def test_float_encoding_parity_on_exponent_form(self):
        # CAST(1e16 AS TEXT) would give '1.0e+16' on SQLite while the memory
        # engine's CONCAT gives str() -> '1e+16'; the sqlite dialect routes
        # FLOAT through a registered Python str() function for exact parity.
        from repro.core.parser import parse_cfd
        from repro.engine.relation import Relation
        from repro.engine.types import AttributeDef, DataType, RelationSchema

        schema = RelationSchema(
            "m", [AttributeDef("A", DataType.FLOAT), AttributeDef("B")]
        )
        rows = [{"A": 1e16, "B": "wrong"}, {"A": 2.5, "B": "right"}]
        cfd = parse_cfd("m: [A='1e+16'] -> [B='right']")
        reports = {}
        for backend_name in ("memory", "sqlite"):
            from repro.backends import create_backend

            backend = create_backend(backend_name)
            backend.add_relation(Relation.from_rows(schema, rows))
            reports[backend_name] = ErrorDetector(backend).detect("m", [cfd])
            backend.close()
        assert reports["memory"].vio() == reports["sqlite"].vio()
        assert reports["sqlite"].total_violations() == 1

    def test_lhs_indexes_created_on_sqlite(
        self, dirty_customers, cfds, sqlite_backend_factory
    ):
        backend = sqlite_backend_factory()
        backend.add_relation(dirty_customers.copy())
        ErrorDetector(backend).detect("customer", cfds)
        names = {
            row["name"]
            for row in backend.execute(
                "SELECT name FROM sqlite_master WHERE type = 'index'"
            )
        }
        backend.close()
        assert any(name.startswith("idx_customer_") for name in names)


def _all_path_reports(relation, cfds, make_sqlite_backend, detect_plan=None):
    """Reports from every detection path: native, both SQL backends, and
    both incremental evaluation modes.

    ``detect_plan`` pins a plan family on every SQL path (requesting
    ``window`` on the embedded engine exercises the clean fallback to
    ``legacy``); ``None`` keeps the auto selection.
    """
    database = Database()
    database.add_relation(relation.copy())
    native = ErrorDetector(database, use_sql=False).detect(relation.name, cfds)
    memory_sql = ErrorDetector(
        database, use_sql=True, detect_plan=detect_plan
    ).detect(relation.name, cfds)
    sqlite_backend = make_sqlite_backend()
    sqlite_backend.add_relation(relation.copy())
    sqlite_sql = ErrorDetector(
        sqlite_backend, use_sql=True, detect_plan=detect_plan
    ).detect(relation.name, cfds)
    incremental = IncrementalDetector(database, relation.name, cfds).report()
    sql_delta_detector = IncrementalDetector(
        database,
        relation.name,
        cfds,
        mirror=sqlite_backend,
        mode="sql_delta",
        detect_plan=detect_plan,
    )
    sql_delta = sql_delta_detector.report()
    sql_delta_detector.close()
    sqlite_backend.close()
    return {
        "native": native,
        "memory_sql": memory_sql,
        "sqlite_sql": sqlite_sql,
        "incremental": incremental,
        "sql_delta": sql_delta,
    }


def _violation_keys(report):
    """Full violation identity, including the pattern index the paths must agree on."""
    return sorted(
        (
            violation.cfd_id,
            violation.kind,
            violation.tids,
            violation.rhs_attribute,
            violation.pattern_index,
            violation.lhs_values,
        )
        for violation in report.violations
    )


class TestOverlappingPatternParity:
    """Tableaux whose pattern tuples overlap: every path must report each
    violating LHS group exactly once, under its lowest violating pattern."""

    def test_overlapping_wildcard_rhs_patterns(self, sqlite_backend_factory):
        schema = RelationSchema.of("r", ["A", "B", "C"])
        relation = Relation.from_rows(
            schema,
            [
                {"A": "x", "B": "1", "C": "c1"},
                {"A": "x", "B": "1", "C": "c2"},  # violates patterns 0 and 1
                {"A": "y", "B": "1", "C": "c1"},
                {"A": "y", "B": "1", "C": "c3"},  # violates pattern 1 only
                {"A": "x", "B": "2", "C": "c1"},
                {"A": "x", "B": "2", "C": "c1"},  # agrees: no violation
            ],
        )
        cfd = CFD(
            relation="r",
            lhs=("A", "B"),
            rhs=("C",),
            patterns=(
                PatternTuple.of({"A": "x", "B": "_", "C": "_"}),
                PatternTuple.of({"A": "_", "B": "_", "C": "_"}),
            ),
            name="phi_overlap",
        )
        reports = _all_path_reports(relation, [cfd], sqlite_backend_factory)
        keys = {name: _violation_keys(report) for name, report in reports.items()}
        assert (
            keys["native"]
            == keys["memory_sql"]
            == keys["sqlite_sql"]
            == keys["incremental"]
            == keys["sql_delta"]
        )
        by_group = {
            violation.lhs_values: violation.pattern_index
            for violation in reports["sqlite_sql"].violations
        }
        # each group once, under the lowest pattern that covers it
        assert by_group == {("x", "1"): 0, ("y", "1"): 1}

    def test_overlapping_constant_rhs_patterns(self, sqlite_backend_factory):
        schema = RelationSchema.of("r", ["A", "C"])
        relation = Relation.from_rows(
            schema,
            [
                {"A": "x", "C": "zz"},  # violates patterns 0 and 1
                {"A": "y", "C": "zz"},  # violates pattern 0 only
                {"A": "x", "C": "c1"},  # clean
            ],
        )
        cfd = CFD(
            relation="r",
            lhs=("A",),
            rhs=("C",),
            patterns=(
                PatternTuple.of({"A": "_", "C": "c1"}),
                PatternTuple.of({"A": "x", "C": "c1"}),
            ),
            name="phi_const_overlap",
        )
        reports = _all_path_reports(relation, [cfd], sqlite_backend_factory)
        keys = {name: _violation_keys(report) for name, report in reports.items()}
        assert (
            keys["native"]
            == keys["memory_sql"]
            == keys["sqlite_sql"]
            == keys["incremental"]
            == keys["sql_delta"]
        )
        by_tid = {
            violation.tids[0]: violation.pattern_index
            for violation in reports["sqlite_sql"].violations
        }
        assert by_tid == {0: 0, 1: 0}

    def test_merged_cfd_with_two_wildcard_rhs_attributes(self, sqlite_backend_factory):
        # The disagreement lives on the SECOND wildcard RHS attribute; a Q_V
        # covering only the first would silently miss it.
        schema = RelationSchema.of("r", ["A", "B", "C"])
        relation = Relation.from_rows(
            schema,
            [
                {"A": "x", "B": "b1", "C": "c1"},
                {"A": "x", "B": "b1", "C": "c2"},  # B agrees, C disagrees
                {"A": "y", "B": "b1", "C": "c1"},
                {"A": "y", "B": "b2", "C": "c1"},  # B disagrees, C agrees
            ],
        )
        cfd = CFD(
            relation="r",
            lhs=("A",),
            rhs=("B", "C"),
            patterns=(PatternTuple.of({"A": "_", "B": "_", "C": "_"}),),
            name="phi_two_rhs",
        )
        reports = _all_path_reports(relation, [cfd], sqlite_backend_factory)
        keys = {name: _violation_keys(report) for name, report in reports.items()}
        assert (
            keys["native"]
            == keys["memory_sql"]
            == keys["sqlite_sql"]
            == keys["incremental"]
            == keys["sql_delta"]
        )
        by_rhs = {
            violation.rhs_attribute: violation.tids
            for violation in reports["sqlite_sql"].violations
        }
        assert by_rhs == {"C": (0, 1), "B": (2, 3)}


class TestNullCellParity:
    """Data with NULL LHS and RHS cells: every path must agree.

    SQL equality is UNKNOWN for NULL while the native detector's Python
    comparisons see ``None`` directly; the plans guard every comparison
    (``IS NOT NULL`` applicability, NULL-safe group restrictions), and this
    tableau pins that the guards add up to the native semantics on all
    five detection paths.
    """

    def test_null_lhs_and_rhs_cells(self, sqlite_backend_factory):
        from tests.tableaux import NULL_CELL_CFD, null_cell_relation

        reports = _all_path_reports(
            null_cell_relation(), [NULL_CELL_CFD], sqlite_backend_factory
        )
        keys = {name: _violation_keys(report) for name, report in reports.items()}
        assert (
            keys["native"]
            == keys["memory_sql"]
            == keys["sqlite_sql"]
            == keys["incremental"]
            == keys["sql_delta"]
        )
        by_kind = {
            (violation.kind, violation.lhs_values)
            for violation in reports["sqlite_sql"].violations
        }
        # exactly the non-NULL group violates the FD part; the NULL-RHS
        # tuple under the constant pattern is a single-tuple violation
        assert by_kind == {("multi", ("x", "1")), ("single", ("w", "3"))}


class TestFivePathProperty:
    """Randomised five-path equivalence: batch-native, batch-SQL on both
    backends, incremental-native and ``sql_delta`` must produce identical
    reports on random relations (NULL cells included) against random
    tableaux (overlapping patterns and multi-wildcard RHS included) —
    under every detection plan family (the embedded engine resolves the
    ``window`` request to its ``legacy`` fallback)."""

    attrs = ("A", "B", "C", "D")
    cell = st.sampled_from(["a", "b", None])
    pattern_cell = st.sampled_from(["_", "a", "b"])

    def _draw_cfds(self, data):
        cfds = []
        for index in range(data.draw(st.integers(min_value=1, max_value=2))):
            lhs = tuple(
                data.draw(
                    st.lists(
                        st.sampled_from(self.attrs),
                        min_size=1,
                        max_size=2,
                        unique=True,
                    )
                )
            )
            remaining = [attr for attr in self.attrs if attr not in lhs]
            rhs = tuple(
                data.draw(
                    st.lists(
                        st.sampled_from(remaining),
                        min_size=1,
                        max_size=2,
                        unique=True,
                    )
                )
            )
            patterns = tuple(
                PatternTuple.of(
                    {attr: data.draw(self.pattern_cell) for attr in lhs + rhs}
                )
                for _ in range(data.draw(st.integers(min_value=1, max_value=2)))
            )
            cfds.append(
                CFD(
                    relation="r",
                    lhs=lhs,
                    rhs=rhs,
                    patterns=patterns,
                    name=f"phi_{index}",
                )
            )
        return cfds

    @pytest.mark.parametrize("detect_plan", ["legacy", "sargable", "window"])
    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_random_relations_and_tableaux_agree_on_all_paths(
        self, detect_plan, data
    ):
        rows = data.draw(
            st.lists(
                st.fixed_dictionaries({attr: self.cell for attr in self.attrs}),
                min_size=0,
                max_size=8,
            )
        )
        relation = Relation.from_rows(
            RelationSchema.of("r", list(self.attrs)), rows
        )
        cfds = self._draw_cfds(data)
        # plain :memory: backends (no fixture: hypothesis re-runs the body
        # many times per test invocation)
        reports = _all_path_reports(
            relation, cfds, SqliteBackend, detect_plan=detect_plan
        )
        keys = {name: _violation_keys(report) for name, report in reports.items()}
        assert (
            keys["native"]
            == keys["memory_sql"]
            == keys["sqlite_sql"]
            == keys["incremental"]
            == keys["sql_delta"]
        )
        counts = {report.tuple_count for report in reports.values()}
        assert counts == {len(relation)}


class TestSqliteEndToEnd:
    def test_full_workflow_on_sqlite_backend(
        self, dirty_customers, cfds, sqlite_config
    ):
        csv_text = dump_csv(dirty_customers)
        system = Semandaq(config=sqlite_config())
        assert isinstance(system.backend, SqliteBackend)

        system.load_csv(csv_text, "customer")
        assert system.backend.row_count("customer") == len(dirty_customers)

        system.add_cfds(cfds)
        # tableaux are mirrored into the backend alongside the data
        assert any(
            name.startswith("tableau_") for name in system.backend.relation_names()
        )

        report = system.detect("customer")
        assert system.detector.last_sql  # SQL really ran (pushdown, not native)
        assert report.total_violations() > 0

        audit = system.audit("customer")
        assert audit.dirty_percentage() > 0

        summary = system.clean("customer")
        assert summary["violations_after"] <= summary["violations_before"]
        # the repaired relation was synced back into the backend
        assert system.backend.row_count("customer") == len(dirty_customers)

    def test_sqlite_system_matches_memory_system(
        self, dirty_customers, cfds, sqlite_config
    ):
        csv_text = dump_csv(dirty_customers)
        reports = {}
        for backend_name in ("memory", "sqlite"):
            config = (
                sqlite_config()
                if backend_name == "sqlite"
                else SemandaqConfig(backend="memory")
            )
            system = Semandaq(config=config)
            system.load_csv(csv_text, "customer")
            system.add_cfds(cfds)
            reports[backend_name] = system.detect("customer")
        assert reports["memory"].vio() == reports["sqlite"].vio()
        assert reports["memory"].dirty_tids() == reports["sqlite"].dirty_tids()

    def test_monitor_updates_visible_after_resync(self, cfds, sqlite_config):
        # once a monitor exists, detect() re-syncs the working copy, so
        # updates applied through it are seen by the pushed-down queries.
        from repro.monitor.updates import Update

        clean = generate_customers(60, seed=23)
        system = Semandaq(config=sqlite_config())
        system.register_relation(clean.copy())
        system.add_cfds(cfds)
        assert system.detect("customer").total_violations() == 0
        tid = system.database.relation("customer").tids()[0]
        system.monitor("customer").apply(Update.modify(tid, {"CNT": "Narnia"}))
        assert system.detect("customer").total_violations() > 0

    def test_repeat_detect_skips_bulk_resync(self, cfds, sqlite_config):
        # static data + no monitor: the second detect must not rebuild the
        # backend table (the sync happens at load time and is then cached).
        clean = generate_customers(60, seed=31)
        system = Semandaq(config=sqlite_config())
        system.register_relation(clean.copy())
        system.add_cfds(cfds)
        system.detect("customer")
        calls = []
        original = system.backend.add_relation
        system.backend.add_relation = lambda *a, **k: (calls.append(a), original(*a, **k))
        system.detect("customer")
        # only the per-CFD temp tableaux are written, never the data relation
        assert all(rel.name.startswith("__semandaq_tableau") for rel, *_ in calls)

    def test_file_backed_sqlite_configuration(self, tmp_path, cfds):
        path = tmp_path / "semandaq.db"
        config = SemandaqConfig(backend="sqlite", backend_options={"path": str(path)})
        with Semandaq(config=config) as system:
            system.register_relation(generate_customers(40, seed=29))
            system.add_cfds(cfds)
            system.detect("customer")
        assert path.exists()
        # the context manager closed the connection; the backend rejects use
        with pytest.raises(Exception):
            system.backend.execute("SELECT 1 AS one")
