"""Tests for the backend registry."""

import pytest

from repro.backends import (
    MemoryBackend,
    SqliteBackend,
    available_backends,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.backends.base import StorageBackend
from repro.errors import BackendError


class TestRegistry:
    def test_builtins_are_registered(self):
        assert "memory" in available_backends()
        assert "sqlite" in available_backends()

    def test_create_memory_backend(self):
        backend = create_backend("memory")
        assert isinstance(backend, MemoryBackend)
        assert backend.dialect.name == "memory"

    def test_create_sqlite_backend_with_options(self, tmp_path):
        backend = create_backend("sqlite", path=str(tmp_path / "test.db"))
        assert isinstance(backend, SqliteBackend)
        assert backend.dialect.name == "sqlite"
        assert backend.dialect.supports_parameters
        backend.close()

    def test_unknown_backend_raises(self):
        with pytest.raises(BackendError):
            create_backend("postgres")

    def test_register_and_unregister_custom_backend(self):
        register_backend("custom-mem", MemoryBackend)
        try:
            assert isinstance(create_backend("custom-mem"), MemoryBackend)
        finally:
            unregister_backend("custom-mem")
        assert "custom-mem" not in available_backends()

    def test_duplicate_registration_requires_replace(self):
        with pytest.raises(BackendError):
            register_backend("memory", MemoryBackend)
        register_backend("memory", MemoryBackend, replace=True)

    def test_unregister_unknown_raises(self):
        with pytest.raises(BackendError):
            unregister_backend("no-such-backend")

    def test_invalid_name_raises(self):
        with pytest.raises(BackendError):
            register_backend("", MemoryBackend)

    def test_backends_implement_the_interface(self):
        for name in ("memory", "sqlite"):
            backend = create_backend(name)
            assert isinstance(backend, StorageBackend)
            backend.close()
