"""Backend test fixtures: switchable :memory: vs file-backed SQLite.

The backend suite runs against in-memory SQLite by default.  Setting
``SEMANDAQ_SQLITE_MODE=file`` reroutes every backend these fixtures create
to a tmp-path database file instead, so CI exercises the parity suite
against real files (WAL journals, durable commits, catalog reopening) in
addition to ``:memory:``.
"""

import itertools
import os

import pytest

from repro import SemandaqConfig
from repro.backends import SqliteBackend

#: whether the suite was asked to run against file-backed SQLite stores
FILE_MODE = os.environ.get("SEMANDAQ_SQLITE_MODE") == "file"

_counter = itertools.count()


@pytest.fixture
def sqlite_backend_factory(tmp_path):
    """Build SqliteBackend instances, file-backed when SEMANDAQ_SQLITE_MODE=file.

    Every backend the factory created is closed at teardown (closing twice
    is harmless, so tests may still close explicitly).
    """
    created = []

    def factory(**options):
        if FILE_MODE and "path" not in options:
            options["path"] = str(tmp_path / f"backend_{next(_counter)}.db")
        backend = SqliteBackend(**options)
        created.append(backend)
        return backend

    yield factory
    for backend in created:
        backend.close()


@pytest.fixture
def sqlite_config(tmp_path):
    """Build sqlite SemandaqConfigs, file-backed when SEMANDAQ_SQLITE_MODE=file."""

    def factory(**kwargs):
        options = dict(kwargs.pop("backend_options", {}))
        if FILE_MODE and "path" not in options:
            options["path"] = str(tmp_path / f"system_{next(_counter)}.db")
        return SemandaqConfig(backend="sqlite", backend_options=options, **kwargs)

    return factory
