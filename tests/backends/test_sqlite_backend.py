"""Tests for the SQLite storage backend: round trips, tid stability, bulk load."""

import pytest

from repro.backends import SqliteBackend
from repro.engine.csvio import load_csv_into
from repro.engine.relation import Relation
from repro.engine.types import AttributeDef, DataType, RelationSchema
from repro.errors import (
    BackendError,
    ConstraintViolationError,
    DuplicateRelationError,
    SqlExecutionError,
    UnknownRelationError,
    UnknownTupleError,
)

SCHEMA = RelationSchema(
    "mixed",
    [
        AttributeDef("S", DataType.STRING),
        AttributeDef("I", DataType.INTEGER),
        AttributeDef("F", DataType.FLOAT),
        AttributeDef("B", DataType.BOOLEAN),
    ],
)

ROWS = [
    {"S": "a", "I": 1, "F": 1.5, "B": True},
    {"S": "b", "I": 2, "F": 2.0, "B": False},
    {"S": None, "I": None, "F": None, "B": None},
]


@pytest.fixture
def backend():
    instance = SqliteBackend()
    yield instance
    instance.close()


class TestCatalog:
    def test_create_list_drop(self, backend):
        backend.create_relation(SCHEMA)
        assert backend.has_relation("mixed")
        assert backend.relation_names() == ["mixed"]
        assert backend.schema("mixed").attribute_names == ["S", "I", "F", "B"]
        backend.drop_relation("mixed")
        assert not backend.has_relation("mixed")

    def test_duplicate_requires_replace(self, backend):
        backend.create_relation(SCHEMA)
        with pytest.raises(DuplicateRelationError):
            backend.create_relation(SCHEMA)
        backend.create_relation(SCHEMA, replace=True)  # does not raise

    def test_unknown_relation_raises(self, backend):
        with pytest.raises(UnknownRelationError):
            backend.drop_relation("ghost")
        with pytest.raises(UnknownRelationError):
            backend.to_relation("ghost")

    def test_invalid_identifier_rejected(self, backend):
        bad = RelationSchema('evil"name', [AttributeDef("A")])
        with pytest.raises(BackendError):
            backend.create_relation(bad)


class TestRowsAndTids:
    def test_bulk_load_round_trip(self, backend):
        backend.create_relation(SCHEMA)
        tids = backend.insert_many("mixed", ROWS)
        assert tids == [0, 1, 2]
        assert backend.row_count("mixed") == 3
        stored = dict(backend.iter_rows("mixed"))
        assert stored[0] == ROWS[0]
        assert stored[1] == ROWS[1]
        assert stored[2] == ROWS[2]
        assert backend.get_row("mixed", 1)["B"] is False

    def test_tids_continue_across_batches(self, backend):
        backend.create_relation(SCHEMA)
        assert backend.insert_many("mixed", ROWS[:2]) == [0, 1]
        assert backend.insert_many("mixed", ROWS[2:]) == [2]

    def test_unknown_tid_raises(self, backend):
        backend.create_relation(SCHEMA)
        with pytest.raises(UnknownTupleError):
            backend.get_row("mixed", 99)

    def test_add_relation_preserves_gappy_tids(self, backend):
        relation = Relation.from_rows(SCHEMA, ROWS)
        relation.delete(1)  # leave a gap
        backend.add_relation(relation)
        assert [tid for tid, _row in backend.iter_rows("mixed")] == [0, 2]
        # new inserts continue after the highest stored tid
        assert backend.insert_many("mixed", [ROWS[1]]) == [3]

    def test_to_relation_round_trip(self, backend):
        relation = Relation.from_rows(SCHEMA, ROWS)
        relation.delete(0)
        backend.add_relation(relation)
        restored = backend.to_relation("mixed")
        assert restored.tids() == relation.tids()
        assert restored.get(1) == relation.get(1)
        assert restored.get(2) == relation.get(2)


class TestQueriesAndIndexes:
    def test_execute_with_parameters(self, backend):
        backend.create_relation(SCHEMA, rows=ROWS)
        rows = backend.execute("SELECT S, I FROM mixed WHERE I >= ?", [2])
        assert rows == [{"S": "b", "I": 2}]

    def test_execute_ddl_returns_empty(self, backend):
        assert backend.execute("CREATE TABLE scratch (x INTEGER)") == []

    def test_execute_bad_sql_raises_engine_error_type(self, backend):
        with pytest.raises(SqlExecutionError):
            backend.execute("SELECT * FROM nowhere_at_all")

    def _index_names(self, backend):
        return {
            row["name"]
            for row in backend.execute(
                "SELECT name FROM sqlite_master WHERE type = 'index'"
            )
        }

    def test_ensure_index_is_idempotent_and_validated(self, backend):
        backend.create_relation(SCHEMA, rows=ROWS)
        backend.ensure_index("mixed", ["S", "I"])
        backend.ensure_index("mixed", ["S", "I"])  # no error on repeat
        assert sum(
            name.startswith("idx_mixed_S_I") for name in self._index_names(backend)
        ) == 1
        with pytest.raises(Exception):
            backend.ensure_index("mixed", ["NOPE"])

    def test_distinct_attribute_lists_get_distinct_indexes(self, backend):
        schema = RelationSchema("tricky", [AttributeDef("a_b"), AttributeDef("a"), AttributeDef("b")])
        backend.create_relation(schema)
        backend.ensure_index("tricky", ["a_b"])
        backend.ensure_index("tricky", ["a", "b"])
        assert sum(
            name.startswith("idx_tricky_") for name in self._index_names(backend)
        ) == 2

    def test_wal_and_synchronous_pragmas(self, tmp_path):
        backend = SqliteBackend(path=str(tmp_path / "pragmas.db"))
        try:
            assert backend.execute("PRAGMA journal_mode")[0]["journal_mode"] == "wal"
            assert backend.execute("PRAGMA synchronous")[0]["synchronous"] == 1
        finally:
            backend.close()

    def test_key_enforced_as_unique_index(self, backend):
        keyed = RelationSchema(
            "keyed", [AttributeDef("K"), AttributeDef("V")], key=("K",)
        )
        backend.create_relation(keyed, rows=[{"K": "a", "V": "1"}])
        # same error type the memory backend raises for a duplicate key
        with pytest.raises(ConstraintViolationError):
            backend.insert_many("keyed", [{"K": "a", "V": "2"}])

    def test_failed_bulk_insert_rolls_back_and_backend_stays_usable(self, backend):
        keyed = RelationSchema(
            "keyed", [AttributeDef("K"), AttributeDef("V")], key=("K",)
        )
        backend.create_relation(keyed, rows=[{"K": "a", "V": "1"}])
        with pytest.raises(ConstraintViolationError):
            backend.insert_many("keyed", [{"K": "b", "V": "2"}, {"K": "a", "V": "3"}])
        # the partial batch was rolled back ...
        assert backend.row_count("keyed") == 1
        # ... and a valid retry succeeds with a consistent tid
        assert backend.insert_many("keyed", [{"K": "c", "V": "4"}]) == [1]


class TestCsvBulkLoad:
    def test_load_csv_into_backend(self, backend):
        csv_text = "A,N\nx,1\ny,2\n,3\n"
        tids = load_csv_into(backend, csv_text, "loaded")
        assert tids == [0, 1, 2]
        assert backend.schema("loaded").attribute("N").dtype is DataType.INTEGER
        assert backend.get_row("loaded", 2)["A"] is None
        assert backend.row_count("loaded") == 3

    def test_load_csv_into_persists_on_disk(self, tmp_path):
        path = tmp_path / "store.db"
        backend = SqliteBackend(path=str(path))
        load_csv_into(backend, "A,B\n1,2\n", "disk_rel")
        backend.close()
        assert path.exists()


class TestReopen:
    def test_reopen_recovers_catalog_and_tids(self, tmp_path):
        path = str(tmp_path / "persist.db")
        first = SqliteBackend(path=path)
        first.create_relation(SCHEMA, rows=ROWS)
        first.close()

        second = SqliteBackend(path=path)
        try:
            assert second.has_relation("mixed")
            assert second.row_count("mixed") == 3
            # schema reconstructed from column affinities (BOOLEAN reopens
            # as INTEGER — values survive, boolean typing does not)
            assert second.schema("mixed").attribute("S").dtype is DataType.STRING
            assert second.schema("mixed").attribute("F").dtype is DataType.FLOAT
            # tid counter continues after the highest stored tid
            assert second.insert_many("mixed", [{"S": "d"}]) == [3]
            # replace works against a table created by a previous session
            second.create_relation(SCHEMA, rows=ROWS[:1], replace=True)
            assert second.row_count("mixed") == 1
        finally:
            second.close()
