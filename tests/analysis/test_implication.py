"""Tests for CFD implication analysis."""

import pytest

from repro.analysis.implication import equivalent, implies, is_redundant
from repro.core.parser import parse_cfd


def cfd(text, name=None):
    return parse_cfd(text, name=name)


class TestBasicImplication:
    def test_cfd_implies_itself(self):
        phi = cfd("r: [A=_] -> [B=_]")
        assert implies([phi], phi)

    def test_fd_transitivity(self):
        sigma = [cfd("r: [A=_] -> [B=_]"), cfd("r: [B=_] -> [C=_]")]
        assert implies(sigma, cfd("r: [A=_] -> [C=_]"))

    def test_fd_augmentation_not_reversed(self):
        sigma = [cfd("r: [A=_] -> [B=_]")]
        assert implies(sigma, cfd("r: [A=_, C=_] -> [B=_]"))
        assert not implies(sigma, cfd("r: [B=_] -> [A=_]"))

    def test_empty_sigma_implies_nothing_contingent(self):
        assert not implies([], cfd("r: [A=_] -> [B=_]"))

    def test_constant_specialisation_implied_by_fd(self):
        # A plain FD CC -> CNT implies any of its constant specialisations of
        # the LHS with wildcard RHS.
        sigma = [cfd("customer: [CC=_] -> [CNT=_]")]
        assert implies(sigma, cfd("customer: [CC='44'] -> [CNT=_]"))

    def test_constant_rhs_not_implied_by_fd(self):
        sigma = [cfd("customer: [CC=_] -> [CNT=_]")]
        assert not implies(sigma, cfd("customer: [CC='44'] -> [CNT='UK']"))

    def test_constant_chain(self):
        sigma = [
            cfd("r: [A='x'] -> [B='1']"),
            cfd("r: [B='1'] -> [C='2']"),
        ]
        assert implies(sigma, cfd("r: [A='x'] -> [C='2']"))
        assert not implies(sigma, cfd("r: [A='y'] -> [C='2']"))

    def test_pattern_subsumption(self):
        # The conditioned CFD is implied by the unconditional FD on the same sides.
        sigma = [cfd("customer: [CNT=_, ZIP=_] -> [STR=_]")]
        assert implies(sigma, cfd("customer: [CNT='UK', ZIP=_] -> [STR=_]"))
        # ... but not the other way round.
        assert not implies(
            [cfd("customer: [CNT='UK', ZIP=_] -> [STR=_]")],
            cfd("customer: [CNT=_, ZIP=_] -> [STR=_]"),
        )


class TestRedundancyAndEquivalence:
    def test_is_redundant(self, customer_cfds):
        phi1, phi2, phi3, phi4 = customer_cfds
        # phi2 ([CNT='UK',ZIP]->[STR]) is not implied by the others.
        assert not is_redundant(customer_cfds, phi2)

    def test_duplicate_is_redundant(self):
        a = cfd("r: [A=_] -> [B=_]", name="a")
        b = cfd("r: [A=_] -> [B=_]", name="b")
        assert is_redundant([a, b], b)

    def test_equivalent_sets(self):
        left = [cfd("r: [A=_] -> [B=_]"), cfd("r: [B=_] -> [C=_]")]
        right = [
            cfd("r: [A=_] -> [B=_]"),
            cfd("r: [B=_] -> [C=_]"),
            cfd("r: [A=_] -> [C=_]"),  # implied, so sets are equivalent
        ]
        assert equivalent(left, right)
        assert not equivalent(left, [cfd("r: [C=_] -> [A=_]")])

    def test_multi_pattern_cfd_normalised_before_check(self):
        merged = cfd("r: [A='1'] -> [B='x'] ; [A='2'] -> [B='y']")
        sigma = [cfd("r: [A='1'] -> [B='x']"), cfd("r: [A='2'] -> [B='y']")]
        assert implies(sigma, merged)
        assert implies([merged], sigma[0])
