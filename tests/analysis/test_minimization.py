"""Tests for minimal covers and redundancy reporting."""

import pytest

from repro.analysis.implication import equivalent
from repro.analysis.minimization import (
    compact,
    minimal_cover,
    redundancy_report,
    remove_duplicates,
)
from repro.core.parser import parse_cfd


def cfd(text, name=None):
    return parse_cfd(text, name=name)


class TestRemoveDuplicates:
    def test_exact_duplicates_dropped(self):
        a = cfd("r: [A=_] -> [B=_]", name="a")
        b = cfd("r: [A=_] -> [B=_]", name="b")
        kept = remove_duplicates([a, b])
        assert len(kept) == 1 and kept[0].name == "a"

    def test_different_patterns_kept(self):
        a = cfd("r: [A='1'] -> [B='x']")
        b = cfd("r: [A='2'] -> [B='x']")
        assert len(remove_duplicates([a, b])) == 2


class TestMinimalCover:
    def test_implied_cfd_removed(self):
        sigma = [
            cfd("r: [A=_] -> [B=_]", name="ab"),
            cfd("r: [B=_] -> [C=_]", name="bc"),
            cfd("r: [A=_] -> [C=_]", name="ac"),
        ]
        cover = minimal_cover(sigma)
        names = {c.name for c in cover}
        assert names == {"ab", "bc"}
        assert equivalent(cover, sigma)

    def test_cover_of_independent_set_is_unchanged(self, customer_cfds):
        cover = minimal_cover(customer_cfds)
        # phi4's constant bindings are not implied by the plain FD phi3, and
        # vice versa, so nothing can be dropped except possibly nothing.
        assert {c.name for c in cover} == {c.name for c in customer_cfds}

    def test_specialised_pattern_removed(self):
        sigma = [
            cfd("customer: [CNT=_, ZIP=_] -> [STR=_]", name="general"),
            cfd("customer: [CNT='UK', ZIP=_] -> [STR=_]", name="specialised"),
        ]
        cover = minimal_cover(sigma)
        assert [c.name for c in cover] == ["general"]


class TestRedundancyReport:
    def test_flags_duplicates_and_implied(self):
        sigma = [
            cfd("r: [A=_] -> [B=_]", name="ab"),
            cfd("r: [A=_] -> [B=_]", name="ab_copy"),
            cfd("r: [B=_] -> [C=_]", name="bc"),
            cfd("r: [A=_] -> [C=_]", name="ac"),
        ]
        report = {entry["cfd"]: entry for entry in redundancy_report(sigma)}
        assert report["ab_copy"]["duplicate"]
        assert report["ac"]["implied_by_rest"]
        assert not report["ab"]["duplicate"]
        assert not report["bc"]["implied_by_rest"]


class TestCompact:
    def test_merges_and_minimises(self):
        sigma = [
            cfd("customer: [CC='44'] -> [CNT='UK']", name="a"),
            cfd("customer: [CC='01'] -> [CNT='US']", name="b"),
            cfd("customer: [CC='44'] -> [CNT='UK']", name="dup"),
        ]
        result = compact(sigma)
        assert len(result) == 1
        assert len(result[0].patterns) == 2
