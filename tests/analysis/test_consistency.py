"""Tests for CFD consistency (satisfiability) analysis."""

import pytest

from repro.analysis.consistency import (
    assert_consistent,
    check_consistency,
    pairwise_conflicts,
)
from repro.core.parser import parse_cfd
from repro.errors import InconsistentCfdsError


def cfds(*texts):
    return [parse_cfd(text, name=f"c{i}") for i, text in enumerate(texts, start=1)]


class TestConsistent:
    def test_empty_set_is_consistent(self):
        assert check_consistency([]).consistent

    def test_paper_cfds_are_consistent(self, customer_cfds):
        result = check_consistency(customer_cfds)
        assert result.consistent
        assert result.witness is not None

    def test_plain_fds_always_consistent(self):
        result = check_consistency(cfds("r: [A=_, B=_] -> [C=_]", "r: [C=_] -> [D=_]"))
        assert result.consistent

    def test_witness_respects_constants(self):
        result = check_consistency(cfds("r: [A='x'] -> [B='y']"))
        assert result.consistent
        # A witness with A='x' must carry B='y'; a fresh-A witness is also fine.
        witness = result.witness
        if witness.get("A") == "x":
            assert witness.get("B") == "y"


class TestInconsistent:
    def test_contradictory_constants_same_lhs(self):
        result = check_consistency(
            cfds("r: [A=_] -> [B='1']", "r: [A=_] -> [B='2']")
        )
        assert not result.consistent
        assert result.conflict and len(result.conflict) == 2

    def test_chain_of_constants_conflict(self):
        # A='x' forces B='1'; B='1' forces C='1'; but A='x' also forces C='2'.
        result = check_consistency(
            cfds(
                "r: [A='x'] -> [B='1']",
                "r: [B='1'] -> [C='1']",
                "r: [A='x'] -> [C='2']",
            )
        )
        # Still consistent: a witness can simply avoid A='x'.
        assert result.consistent

    def test_wildcard_lhs_makes_chain_unavoidable(self):
        result = check_consistency(
            cfds(
                "r: [A=_] -> [B='1']",
                "r: [B='1'] -> [C='1']",
                "r: [A=_] -> [C='2']",
            )
        )
        assert not result.consistent

    def test_finite_domain_inconsistency(self):
        # With a two-value domain for A, forcing B to differ per A value and
        # also forcing B to be constant is unsatisfiable.
        constraint_set = cfds(
            "r: [A='0'] -> [B='x']",
            "r: [A='1'] -> [B='x']",
            "r: [B='x'] -> [A='0']",
        )
        # Over an infinite domain this is satisfiable (pick a fresh A).
        assert check_consistency(constraint_set).consistent
        # Over the finite domain {0, 1} it is not: every A forces B='x',
        # and B='x' forces A='0', so A='1' is impossible — but a witness with
        # A='0' still exists, so the set remains satisfiable.
        result = check_consistency(constraint_set, finite_domains={"A": ["0", "1"]})
        assert result.consistent

    def test_assert_consistent_raises(self):
        with pytest.raises(InconsistentCfdsError):
            assert_consistent(cfds("r: [A=_] -> [B='1']", "r: [A=_] -> [B='2']"))

    def test_assert_consistent_passes(self, customer_cfds):
        assert assert_consistent(customer_cfds).consistent


class TestPairwiseConflicts:
    def test_reports_conflicting_pairs_only(self):
        constraint_set = cfds(
            "r: [A=_] -> [B='1']",
            "r: [A=_] -> [B='2']",
            "r: [C=_] -> [D=_]",
        )
        conflicts = pairwise_conflicts(constraint_set)
        assert conflicts == [("c1", "c2")]

    def test_no_conflicts_in_consistent_set(self, customer_cfds):
        assert pairwise_conflicts(customer_cfds) == []
