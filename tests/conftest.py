"""Shared fixtures: the paper's customer example, generated workloads, a wired system."""

from __future__ import annotations

import pytest

from repro import Database, Semandaq
from repro.datasets import (
    generate_customers,
    inject_noise,
    paper_cfds,
    paper_example_relation,
)


@pytest.fixture
def customer_relation():
    """The small hand-written customer instance from the paper's examples."""
    return paper_example_relation()


@pytest.fixture
def customer_cfds():
    """The paper's CFDs phi1 … phi4."""
    return paper_cfds()


@pytest.fixture
def customer_database(customer_relation):
    """A database holding the example customer relation."""
    database = Database()
    database.add_relation(customer_relation)
    return database


@pytest.fixture
def clean_customers():
    """A medium, generated, clean customer relation (CFDs hold)."""
    return generate_customers(120, seed=7)


@pytest.fixture
def noisy_customers(clean_customers):
    """The clean relation with 5% cell noise on the CFD-relevant attributes."""
    return inject_noise(
        clean_customers,
        rate=0.05,
        seed=11,
        attributes=["CNT", "CITY", "STR", "CC"],
    )


@pytest.fixture
def system(customer_relation, customer_cfds):
    """A Semandaq system wired with the example relation and the paper's CFDs."""
    semandaq = Semandaq()
    semandaq.register_relation(customer_relation)
    semandaq.add_cfds(customer_cfds)
    return semandaq
