"""Tests for the synthetic workloads: generators satisfy their CFDs, noise breaks them."""

import pytest

from repro.core.satisfaction import satisfies_all, violating_tids
from repro.datasets import (
    generate_customers,
    generate_hospital,
    generate_orders,
    hospital_cfds,
    inject_noise,
    orders_cfds,
    paper_cfds,
    paper_example_relation,
)
from repro.datasets.noise import NULL, SWAP, TYPO


class TestCustomerDataset:
    def test_clean_data_satisfies_paper_cfds(self):
        relation = generate_customers(200, seed=1)
        assert satisfies_all(relation, paper_cfds())

    def test_generation_is_deterministic(self):
        assert generate_customers(50, seed=9).to_list() == generate_customers(50, seed=9).to_list()
        assert generate_customers(50, seed=9).to_list() != generate_customers(50, seed=10).to_list()

    def test_requested_size(self):
        assert len(generate_customers(73, seed=2)) == 73

    def test_paper_example_contains_known_violations(self):
        relation = paper_example_relation()
        dirty = violating_tids(relation, paper_cfds())
        assert dirty == {0, 1, 4, 5}

    def test_schema_matches_paper(self):
        relation = generate_customers(5, seed=0)
        assert relation.attribute_names == ["NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"]


class TestHospitalDataset:
    def test_clean_data_satisfies_cfds(self):
        relation = generate_hospital(300, seed=3)
        assert satisfies_all(relation, hospital_cfds())

    def test_provider_reuse(self):
        relation = generate_hospital(120, seed=4)
        providers = relation.distinct_values("PROVIDER")
        assert len(providers) < len(relation)

    def test_deterministic(self):
        assert generate_hospital(40, seed=5).to_list() == generate_hospital(40, seed=5).to_list()


class TestOrdersDataset:
    def test_clean_data_satisfies_cfds(self):
        relation = generate_orders(250, seed=6)
        assert satisfies_all(relation, orders_cfds())

    def test_order_ids_unique(self):
        relation = generate_orders(100, seed=7)
        assert len(set(relation.distinct_values("ORDER_ID"))) == 100

    def test_quantity_is_integer(self):
        relation = generate_orders(10, seed=8)
        assert all(isinstance(row["QUANTITY"], int) for row in relation.to_list())


class TestNoiseInjection:
    def test_ground_truth_matches_differences(self):
        clean = generate_customers(100, seed=11)
        result = inject_noise(clean, rate=0.05, seed=12)
        for (tid, attribute), (old, new) in result.corrupted.items():
            assert clean.value(tid, attribute) == old
            assert result.dirty.value(tid, attribute) == new
            assert old != new
        # every other cell is untouched
        for tid, row in clean.rows():
            for attribute, value in row.items():
                if (tid, attribute) not in result.corrupted:
                    assert result.dirty.value(tid, attribute) == value

    def test_noise_rate_roughly_respected(self):
        clean = generate_customers(300, seed=13)
        result = inject_noise(clean, rate=0.10, seed=14)
        assert 0.05 < result.corruption_rate < 0.15

    def test_zero_rate_changes_nothing(self):
        clean = generate_customers(50, seed=15)
        result = inject_noise(clean, rate=0.0, seed=16)
        assert result.corrupted == {}
        assert result.dirty.to_list() == clean.to_list()

    def test_noise_creates_cfd_violations(self):
        clean = generate_customers(200, seed=17)
        dirty = inject_noise(clean, rate=0.08, seed=18, attributes=["CNT", "CC", "CITY"]).dirty
        assert violating_tids(dirty, paper_cfds())

    def test_null_kind(self):
        clean = generate_customers(80, seed=19)
        result = inject_noise(clean, rate=0.2, seed=20, attributes=["STR"], kinds=(NULL,))
        assert all(new is None for _old, new in result.corrupted.values())

    def test_swap_kind_uses_domain_values(self):
        clean = generate_customers(80, seed=21)
        result = inject_noise(clean, rate=0.2, seed=22, attributes=["CNT"], kinds=(SWAP,))
        domain = set(clean.distinct_values("CNT"))
        assert all(new in domain for _old, new in result.corrupted.values())

    def test_typo_kind_produces_near_strings(self):
        clean = generate_customers(80, seed=23)
        result = inject_noise(clean, rate=0.2, seed=24, attributes=["STR"], kinds=(TYPO,))
        from repro.repair.cost import damerau_levenshtein

        assert all(
            damerau_levenshtein(str(old), str(new)) <= 2
            for old, new in result.corrupted.values()
        )

    def test_invalid_parameters(self):
        clean = generate_customers(10, seed=25)
        with pytest.raises(ValueError):
            inject_noise(clean, rate=1.5)
        with pytest.raises(ValueError):
            inject_noise(clean, rate=0.1, kinds=("scramble",))

    def test_deterministic_for_seed(self):
        clean = generate_customers(60, seed=26)
        a = inject_noise(clean, rate=0.1, seed=27)
        b = inject_noise(clean, rate=0.1, seed=27)
        assert a.corrupted == b.corrupted
