"""Shared regression tableaux pinned by more than one suite.

The NULL-cell tableau is asserted both by the five-path parity suite
(``tests/backends/test_parity.py``) and by the incremental ``sql_delta``
suite (``tests/detection/test_sql_delta.py``); keeping one copy here means
a NULL-semantics change cannot silently leave one suite pinning stale
expectations.
"""

from __future__ import annotations

from repro.core.cfd import CFD
from repro.core.pattern import PatternTuple
from repro.engine.relation import Relation
from repro.engine.types import RelationSchema

#: skip reason for tests that pin the row-value delta plan specifically
ROW_VALUE_SKIP_REASON = (
    "sqlite3 library predates 3.15 (no row values) or forced off"
)


def null_cell_relation() -> Relation:
    """Data with NULL LHS and RHS cells in every interesting position."""
    return Relation.from_rows(
        RelationSchema.of("r", ["A", "B", "C"]),
        [
            {"A": "x", "B": "1", "C": "c1"},
            {"A": "x", "B": "1", "C": "c2"},   # genuine multi-tuple violation
            {"A": None, "B": "1", "C": "c1"},
            {"A": None, "B": "1", "C": "c3"},  # NULL LHS: in no group
            {"A": "y", "B": None, "C": "c1"},
            {"A": "y", "B": None, "C": "c2"},  # NULL second LHS attribute
            {"A": "z", "B": "2", "C": None},
            {"A": "z", "B": "2", "C": "c5"},   # NULL RHS member: no disagreement
            {"A": "w", "B": "3", "C": None},   # NULL RHS vs constant pattern
        ],
    )


#: the CFD the NULL tableau is checked against: one constant-RHS pattern
#: (hit by the NULL-RHS tuple) and one all-wildcard pattern (the FD part)
NULL_CELL_CFD = CFD(
    relation="r",
    lhs=("A", "B"),
    rhs=("C",),
    patterns=(
        PatternTuple.of({"A": "w", "B": "_", "C": "c9"}),
        PatternTuple.of({"A": "_", "B": "_", "C": "_"}),
    ),
    name="phi_null",
)
