"""Tests for system configuration validation."""

import pytest

from repro.errors import ConfigurationError
from repro.system.config import SemandaqConfig


class TestSemandaqConfig:
    def test_defaults_are_valid(self):
        SemandaqConfig().validate()

    def test_invalid_iterations(self):
        with pytest.raises(ConfigurationError):
            SemandaqConfig(repair_max_iterations=0).validate()

    def test_invalid_majority(self):
        with pytest.raises(ConfigurationError):
            SemandaqConfig(audit_majority=1.0).validate()
        with pytest.raises(ConfigurationError):
            SemandaqConfig(audit_majority=-0.1).validate()

    def test_invalid_quality_levels(self):
        with pytest.raises(ConfigurationError):
            SemandaqConfig(quality_levels=1).validate()

    def test_invalid_strategy(self):
        with pytest.raises(ConfigurationError):
            SemandaqConfig(quality_strategy="rainbow").validate()

    def test_invalid_attribute_weight(self):
        with pytest.raises(ConfigurationError):
            SemandaqConfig(attribute_weights={"A": 0}).validate()

    def test_invalid_backend(self):
        with pytest.raises(ConfigurationError):
            SemandaqConfig(backend="oracle").validate()

    def test_invalid_incremental_mode(self):
        with pytest.raises(ConfigurationError):
            SemandaqConfig(incremental_mode="psychic").validate()

    def test_incremental_modes_are_valid(self):
        SemandaqConfig(incremental_mode="native").validate()
        SemandaqConfig(incremental_mode="sql_delta").validate()

    def test_builtin_backends_are_valid(self):
        SemandaqConfig(backend="memory").validate()
        SemandaqConfig(backend="sqlite").validate()
        SemandaqConfig(backend="sqlite", backend_options={"path": ":memory:"}).validate()

    def test_serving_knobs_are_valid(self):
        SemandaqConfig(pool_size=0).validate()
        SemandaqConfig(pool_size=8, serve_threads=2, pool_timeout=1.5).validate()
        SemandaqConfig(pool_size=None).validate()

    def test_invalid_pool_size(self):
        with pytest.raises(ConfigurationError):
            SemandaqConfig(pool_size=-1).validate()

    def test_invalid_serve_threads(self):
        with pytest.raises(ConfigurationError):
            SemandaqConfig(serve_threads=0).validate()

    def test_invalid_pool_timeout(self):
        with pytest.raises(ConfigurationError):
            SemandaqConfig(pool_timeout=0.0).validate()

    def test_custom_valid_config(self):
        SemandaqConfig(
            use_sql_detection=False,
            repair_max_iterations=3,
            audit_majority=0.8,
            quality_levels=3,
            quality_strategy="quantile",
            attribute_weights={"CNT": 2.0},
        ).validate()
