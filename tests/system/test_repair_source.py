"""Facade behaviour of ``SemandaqConfig.repair_source``."""

import pytest

from repro import Semandaq, SemandaqConfig
from repro.datasets import generate_customers, inject_noise, paper_cfds
from repro.errors import ConfigurationError


def _system(**config_kwargs):
    system = Semandaq(config=SemandaqConfig(**config_kwargs))
    dirty = inject_noise(
        generate_customers(50, seed=421),
        rate=0.08,
        seed=422,
        attributes=["CITY", "STR", "CNT"],
    ).dirty
    system.register_relation(dirty)
    system.add_cfds(paper_cfds())
    return system


def test_unknown_repair_source_is_rejected():
    with pytest.raises(ConfigurationError, match="repair_source"):
        SemandaqConfig(repair_source="remote").validate()


def test_auto_plans_resident_and_native_forces_the_oracle():
    resident = _system(telemetry=True)
    oracle = _system(repair_source="native", telemetry=True)
    try:
        first = resident.repair("customer")
        second = oracle.repair("customer")
        assert first.source == "backend"
        assert second.source == "native"
        assert [
            (c.tid, c.attribute, c.old_value, c.new_value) for c in first.changes
        ] == [(c.tid, c.attribute, c.old_value, c.new_value) for c in second.changes]
        assert resident.metrics()["counters"]["repair.source_resident"] == 1
        assert "repair.source_resident" not in oracle.metrics()["counters"]
        assert (
            oracle.metrics()["counters"]["repair.cells_changed"]
            == len(second.changes)
        )
    finally:
        resident.close()
        oracle.close()


def test_native_detection_disables_the_resident_source():
    system = _system(use_sql_detection=False)
    try:
        assert system.repair("customer").source == "native"
    finally:
        system.close()


def test_review_hydrates_a_resident_repair():
    system = _system(backend="sqlite")
    try:
        system.repair("customer")
        assert system._repairs["customer"].source == "backend"
        review = system.review("customer")
        # the review works over the full relation, not the partial view
        assert len(review.working) == 50
        reviewed = review.finalise()
        applied = system.apply_repair("customer", reviewed)
        assert applied.to_list() == reviewed.to_list()
        assert system.detect("customer").total_violations() == 0
    finally:
        system.close()


def test_resident_clean_matches_native_clean():
    resident = _system(backend="sqlite")
    native = _system(backend="sqlite", repair_source="native")
    try:
        left = resident.clean("customer")
        right = native.clean("customer")
        for key in (
            "violations_before",
            "cells_changed",
            "repair_cost",
            "violations_after",
            "dirty_tuples_after",
        ):
            assert left[key] == right[key], key
        assert resident.database.relation("customer").to_list() == (
            native.database.relation("customer").to_list()
        )
    finally:
        resident.close()
        native.close()
