"""Tests for the Semandaq facade: the end-to-end workflow of the demo."""

import pytest

from repro import Semandaq, SemandaqConfig
from repro.core.satisfaction import satisfies_all, violating_tids
from repro.datasets import generate_customers, inject_noise, paper_cfds
from repro.engine.csvio import dump_csv
from repro.errors import ConfigurationError
from repro.monitor.updates import Update


class TestConnectAndSpecify:
    def test_register_relation_and_schema_summary(self, system):
        assert system.schema_summary() == {
            "customer": ["NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"]
        }

    def test_load_csv(self, customer_relation):
        semandaq = Semandaq()
        semandaq.load_csv(dump_csv(customer_relation), "customer")
        assert "customer" in semandaq.schema_summary()

    def test_add_cfd_from_text(self, customer_relation):
        semandaq = Semandaq()
        semandaq.register_relation(customer_relation)
        cfd = semandaq.add_cfd("customer: [CC='44'] -> [CNT='UK']")
        assert cfd.relation == "customer"
        assert semandaq.check_constraints("customer").consistent

    def test_discover_cfds(self):
        semandaq = Semandaq()
        reference = generate_customers(100, seed=61)
        semandaq.register_relation(reference)
        discovered = semandaq.discover_cfds(
            reference, register=True, min_support=10, max_lhs_size=1
        )
        assert discovered
        assert semandaq.detect("customer").is_clean()


class TestDetectAuditExplore:
    def test_detect_and_cached_report(self, system):
        report = system.detect("customer")
        assert report.total_violations() >= 3
        assert system.last_report("customer") is report

    def test_audit_matches_detection(self, system):
        system.detect("customer")
        audit = system.audit("customer")
        assert audit.tuple_count == 6
        assert audit.dirty_tuple_count() == 3

    def test_explorer_and_session(self, system):
        explorer = system.explorer("customer")
        assert len(explorer.list_cfds()) == 4
        session = system.exploration_session("customer")
        assert session.level == "cfd"

    def test_detect_for_tuples_facade(self, system):
        full = system.detect("customer")
        restricted = system.detect_for_tuples("customer", [4])
        assert restricted.total_violations() >= 1
        assert all(4 in violation.tids for violation in restricted.violations)
        assert restricted.tuple_count == full.tuple_count
        # the partial report must not displace the cached full report
        assert system.last_report("customer") is full

    def test_detect_for_tuples_facade_on_sqlite(self, customer_relation, customer_cfds):
        semandaq = Semandaq(SemandaqConfig(backend="sqlite"))
        semandaq.register_relation(customer_relation)
        semandaq.add_cfds(customer_cfds)
        restricted = semandaq.detect_for_tuples("customer", [4])
        assert restricted.total_violations() >= 1
        assert all(4 in violation.tids for violation in restricted.violations)
        semandaq.close()

    def test_native_detection_configuration(self, customer_relation, customer_cfds):
        semandaq = Semandaq(SemandaqConfig(use_sql_detection=False))
        semandaq.register_relation(customer_relation)
        semandaq.add_cfds(customer_cfds)
        assert semandaq.detect("customer").total_violations() >= 3


class TestServe:
    def _serving_system(self, tmp_path, customer_relation, customer_cfds, **overrides):
        config = SemandaqConfig(
            backend="sqlite",
            backend_options={"path": str(tmp_path / "serve.db")},
            **overrides,
        )
        semandaq = Semandaq(config)
        semandaq.register_relation(customer_relation)
        semandaq.add_cfds(customer_cfds)
        return semandaq

    def test_serve_matches_serial_detect_for_tuples(
        self, tmp_path, customer_relation, customer_cfds
    ):
        semandaq = self._serving_system(
            tmp_path, customer_relation, customer_cfds, serve_threads=4
        )
        requests = [[0, 1], [2, 3], [4], [5], [0, 4], [1, 5]]
        serial = [
            semandaq.detect_for_tuples("customer", tids) for tids in requests
        ]
        concurrent = semandaq.serve("customer", requests)
        assert concurrent == serial
        semandaq.close()

    def test_serve_single_worker_runs_serially(
        self, tmp_path, customer_relation, customer_cfds
    ):
        semandaq = self._serving_system(
            tmp_path, customer_relation, customer_cfds, serve_threads=1
        )
        reports = semandaq.serve("customer", [[4], [0, 1]])
        assert len(reports) == 2
        assert all(4 in v.tids for v in reports[0].violations)
        semandaq.close()

    def test_serve_rejects_invalid_worker_count(
        self, tmp_path, customer_relation, customer_cfds
    ):
        semandaq = self._serving_system(tmp_path, customer_relation, customer_cfds)
        with pytest.raises(ConfigurationError):
            semandaq.serve("customer", [[0]], max_workers=0)
        semandaq.close()

    def test_pool_counters_surface_in_metrics(
        self, tmp_path, customer_relation, customer_cfds
    ):
        semandaq = self._serving_system(
            tmp_path, customer_relation, customer_cfds, telemetry=True, pool_size=2
        )
        semandaq.serve("customer", [[0], [1], [2], [3]])
        counters = semandaq.metrics()["counters"]
        assert counters["pool.size"] == 2
        assert counters["pool.acquired"] >= 1
        assert "pool.wait_ms" in counters
        semandaq.close()

    def test_pool_size_zero_config_serves_correctly(
        self, tmp_path, customer_relation, customer_cfds
    ):
        semandaq = self._serving_system(
            tmp_path, customer_relation, customer_cfds, pool_size=0
        )
        assert semandaq.backend.pool_stats() == {}
        serial = [semandaq.detect_for_tuples("customer", [4])]
        assert semandaq.serve("customer", [[4]]) == serial
        semandaq.close()


class TestRepairReviewApply:
    def test_repair_and_review(self, system):
        repair = system.repair("customer")
        assert repair.changes
        review = system.review("customer")
        assert review.modified_cells()

    def test_apply_repair_replaces_relation(self, system, customer_cfds):
        system.repair("customer")
        repaired = system.apply_repair("customer")
        assert satisfies_all(repaired, customer_cfds)
        assert system.detect("customer").is_clean()

    def test_apply_repair_without_candidate_rejected(self, system):
        with pytest.raises(ConfigurationError):
            system.apply_repair("customer")

    def test_apply_reviewed_relation(self, system, customer_cfds):
        system.repair("customer")
        review = system.review("customer")
        reviewed = review.finalise()
        applied = system.apply_repair("customer", reviewed)
        assert applied.to_list() == reviewed.to_list()

    def test_clean_pipeline_summary(self, customer_relation, customer_cfds):
        semandaq = Semandaq()
        semandaq.register_relation(customer_relation.copy())
        semandaq.add_cfds(customer_cfds)
        summary = semandaq.clean("customer")
        assert summary["violations_before"] > 0
        assert summary["violations_after"] == 0
        assert summary["cells_changed"] > 0


class TestMonitoring:
    def test_monitor_detect_mode(self, system):
        monitor = system.monitor("customer")
        assert monitor.summary()["mode"] == "detect"

    def test_monitor_switches_to_repair_after_apply(self, system, customer_cfds):
        system.repair("customer")
        system.apply_repair("customer")
        monitor = system.monitor("customer")
        assert monitor.summary()["mode"] == "repair"
        relation = system.database.relation("customer")
        bad_row = dict(relation.get(2))
        bad_row["CNT"] = "FR"  # CC=01 but CNT=FR clashes with phi3 group
        monitor.apply_batch([Update.insert(bad_row)])
        assert not violating_tids(relation, customer_cfds)

    def test_monitor_explicit_mode_override(self, system):
        monitor = system.monitor("customer", cleansed=True)
        assert monitor.summary()["mode"] == "repair"
        system.monitor("customer", cleansed=False)
        assert monitor.summary()["mode"] == "detect"

    def test_apply_updates_facade_batch(self, system):
        relation = system.database.relation("customer")
        before = len(relation)
        template = dict(relation.get(relation.tids()[0]))
        tids = system.apply_updates(
            "customer",
            [
                Update.insert(dict(template, STR="A Brand New Street")),
                Update.delete(relation.tids()[1]),
            ],
        )
        assert len(tids) == 2 and tids[0] is not None
        assert len(relation) == before  # one in, one out
        assert len(system.monitor("customer").log) == 2

    @pytest.mark.parametrize("backend_name", ["memory", "sqlite"])
    def test_sql_delta_system_matches_native_system(
        self, backend_name, customer_cfds
    ):
        reports = {}
        for incremental_mode in ("native", "sql_delta"):
            config = SemandaqConfig(
                backend=backend_name, incremental_mode=incremental_mode
            )
            with Semandaq(config=config) as semandaq:
                semandaq.register_relation(generate_customers(50, seed=87).copy())
                semandaq.add_cfds(customer_cfds)
                relation = semandaq.database.relation("customer")
                template = dict(relation.get(relation.tids()[0]))
                monitor = semandaq.monitor("customer")
                assert monitor.summary()["incremental_mode"] == incremental_mode
                semandaq.apply_updates(
                    "customer",
                    [
                        Update.insert(dict(template, STR="A Brand New Street")),
                        Update.modify(relation.tids()[1], {"CNT": "Narnia"}),
                        Update.delete(relation.tids()[2]),
                    ],
                )
                reports[incremental_mode] = monitor.current_report()
                if incremental_mode == "sql_delta":
                    assert monitor.summary()["delta_queries"] > 0
        assert reports["native"].vio() == reports["sql_delta"].vio()
        assert reports["native"].dirty_tids() == reports["sql_delta"].dirty_tids()
        assert reports["sql_delta"].total_violations() > 0


class TestEndToEndOnGeneratedData:
    def test_full_workflow_reduces_dirtiness(self):
        clean = generate_customers(150, seed=71)
        noise = inject_noise(clean, rate=0.04, seed=72, attributes=["CNT", "CITY", "CC"])
        semandaq = Semandaq()
        semandaq.register_relation(noise.dirty)
        semandaq.add_cfds(paper_cfds())
        before = semandaq.audit("customer").dirty_percentage()
        semandaq.repair("customer")
        semandaq.apply_repair("customer")
        after = semandaq.audit("customer").dirty_percentage()
        assert after <= before
        assert after == 0.0 or semandaq.last_report("customer").total_violations() == 0
