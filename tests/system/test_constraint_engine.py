"""Tests for the constraint engine."""

import pytest

from repro.core.parser import parse_cfd
from repro.datasets import generate_customers, paper_cfds
from repro.engine.database import Database
from repro.errors import CfdSchemaError, InconsistentCfdsError
from repro.system.constraint_engine import ConstraintEngine


@pytest.fixture
def engine(customer_database):
    return ConstraintEngine(customer_database)


class TestRegistration:
    def test_add_cfd_and_lookup(self, engine, customer_cfds):
        added = engine.add_cfd(customer_cfds[0], name="phi1")
        assert engine.get("phi1") is added
        assert len(engine) == 1

    def test_add_text(self, engine):
        cfd = engine.add_text("customer: [CC='44'] -> [CNT='UK']")
        assert cfd.name == "cfd1"
        assert engine.cfds("customer") == [cfd]

    def test_add_text_with_default_relation(self, engine):
        cfd = engine.add_text("[CC=_] -> [CNT=_]", default_relation="customer")
        assert cfd.relation == "customer"

    def test_unknown_relation_rejected(self, engine):
        with pytest.raises(CfdSchemaError):
            engine.add_text("orders: [A=_] -> [B=_]")

    def test_unknown_attribute_rejected(self, engine):
        with pytest.raises(CfdSchemaError):
            engine.add_text("customer: [NOPE=_] -> [CNT=_]")

    def test_inconsistent_addition_rejected(self, engine):
        engine.add_text("customer: [CC=_] -> [CNT='UK']")
        with pytest.raises(InconsistentCfdsError):
            engine.add_text("customer: [CC=_] -> [CNT='US']")
        assert len(engine) == 1

    def test_consistency_check_can_be_disabled(self, customer_database):
        engine = ConstraintEngine(customer_database, check_consistency_on_add=False)
        engine.add_text("customer: [CC=_] -> [CNT='UK']")
        engine.add_text("customer: [CC=_] -> [CNT='US']")
        assert len(engine) == 2
        assert not engine.consistency("customer").consistent

    def test_remove_and_clear(self, engine, customer_cfds):
        engine.add_many(customer_cfds)
        engine.remove("phi1")
        assert len(engine) == 3
        engine.clear()
        assert len(engine) == 0

    def test_tableaux_stored_relationally(self, engine, customer_cfds):
        engine.add_cfd(customer_cfds[3], name="phi4")
        assert engine.metadata.has_relation("tableau_phi4")
        assert len(engine.metadata.relation("tableau_phi4")) == 2

    def test_describe(self, engine, customer_cfds):
        engine.add_many(customer_cfds)
        described = {entry["id"]: entry for entry in engine.describe()}
        assert described["phi4"]["constant"]
        assert described["phi1"]["plain_fd"]
        assert described["phi2"]["patterns"] == 1


class TestAnalysis:
    def test_consistency_and_conflicts(self, engine, customer_cfds):
        engine.add_many(customer_cfds)
        assert engine.consistency("customer").consistent
        assert engine.conflicts("customer") == []

    def test_redundancy_and_cover(self, engine):
        engine.add_text("customer: [CNT=_, ZIP=_] -> [STR=_]")
        engine.add_text("customer: [CNT='UK', ZIP=_] -> [STR=_]")
        redundancy = engine.redundancy("customer")
        assert any(entry["implied_by_rest"] for entry in redundancy)
        cover = engine.cover("customer")
        assert len(cover) == 1

    def test_tableau_statistics(self, engine, customer_cfds):
        engine.add_many(customer_cfds)
        stats = engine.tableau_statistics()
        assert stats["cfds"] == 4
        assert stats["pattern_tuples"] == 5  # phi4 has two pattern tuples


class TestDiscoveryIntegration:
    def test_discover_without_registering(self, customer_database):
        engine = ConstraintEngine(customer_database)
        reference = generate_customers(100, seed=51)
        discovered = engine.discover_from(reference, min_support=8, max_lhs_size=1)
        assert discovered
        assert len(engine) == 0

    def test_discover_and_register(self, customer_database):
        engine = ConstraintEngine(customer_database)
        reference = generate_customers(100, seed=52)
        registered = engine.discover_from(
            reference, min_support=8, max_lhs_size=1, register=True
        )
        assert registered
        assert len(engine) == len(registered)
        assert engine.consistency("customer").consistent
