"""Setup shim for editable installs on environments without the wheel package."""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description="Semandaq reproduction: a data quality system based on conditional functional dependencies",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
