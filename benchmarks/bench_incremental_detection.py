"""DET-INCR — incremental detection vs full re-detection under updates.

Companion experiment of [3]: incremental detection cost is proportional to
the update batch size, so it beats re-running batch detection for small
batches and loses its edge as the batch approaches the relation size.  The
benchmark reports both wall time and the ``tuples_examined`` work counter.
"""

import pytest

from bench_utils import emit_bench_json, make_dirty_customers, make_database, report_series
from repro.datasets import paper_cfds
from repro.detection.detector import ErrorDetector
from repro.detection.incremental import IncrementalDetector

RELATION_SIZE = 800


def apply_updates(detector, updates):
    for tid, changes in updates:
        detector.update(tid, changes)
    return detector.report()


def make_updates(relation, count, seed=0):
    tids = relation.tids()[:count]
    return [(tid, {"CITY": f"CITY{seed}_{index}"}) for index, tid in enumerate(tids)]


@pytest.mark.parametrize("batch_size", [1, 10, 50, 200])
def test_incremental_detection_vs_batch_size(benchmark, batch_size):
    """Incremental maintenance cost grows with the update batch, not the table."""
    _clean, noise = make_dirty_customers(RELATION_SIZE, rate=0.02, seed=7)
    database = make_database(noise.dirty.copy())
    detector = IncrementalDetector(database, "customer", paper_cfds())
    detector.reset_cost_counter()
    updates = make_updates(database.relation("customer"), batch_size)

    def run():
        return apply_updates(detector, updates)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["batch_size"] = batch_size
    benchmark.extra_info["tuples_examined"] = detector.tuples_examined
    benchmark.extra_info["violations"] = report.total_violations()
    assert report.tuple_count == RELATION_SIZE


def test_full_redetection_baseline(benchmark):
    """The batch-detection baseline the incremental numbers are compared to."""
    _clean, noise = make_dirty_customers(RELATION_SIZE, rate=0.02, seed=7)
    database = make_database(noise.dirty)
    detector = ErrorDetector(database, use_sql=False)
    report = benchmark(detector.detect, "customer", paper_cfds())
    benchmark.extra_info["size"] = RELATION_SIZE
    benchmark.extra_info["violations"] = report.total_violations()


def test_incremental_work_is_local():
    """Work-counter comparison (the crossover shape), independent of timers."""
    _clean, noise = make_dirty_customers(RELATION_SIZE, rate=0.02, seed=7)
    database = make_database(noise.dirty.copy())
    detector = IncrementalDetector(database, "customer", paper_cfds())
    initial_cost = detector.tuples_examined  # cost of one full pass
    rows = []
    for batch_size in (1, 10, 50, 200, 800):
        detector.reset_cost_counter()
        for tid, changes in make_updates(database.relation("customer"), batch_size, seed=batch_size):
            detector.update(tid, changes)
        rows.append(
            {
                "batch_size": batch_size,
                "incremental_examinations": detector.tuples_examined,
                "full_redetection_examinations": initial_cost,
                "incremental_wins": detector.tuples_examined < initial_cost,
            }
        )
    report_series("DET-INCR incremental vs batch work", rows)
    emit_bench_json("DET-INCR", rows)
    assert rows[0]["incremental_wins"]
    assert rows[0]["incremental_examinations"] < rows[-1]["incremental_examinations"]
