"""INCR-SYNC — per-tid delta shipping vs whole-relation re-sync.

Before the backend-resident maintenance work, every ``detect()`` on a
monitored relation re-loaded the whole relation into the storage backend
(``add_relation(replace=True)``) so the pushed-down queries could see the
monitor's updates.  The monitor now ships each applied update down as a
single-statement INSERT/DELETE/UPDATE instead, so the cost of keeping the
backend current is proportional to the update batch, not the relation.

This benchmark times both sides of that trade on the SQLite backend: a full
bulk re-load of the relation vs applying a fixed-size batch of per-tid
UPDATE deltas.  The full-resync series grows linearly with the relation;
the delta series stays flat, so the gap widens with size — that widening
gap is the payoff of backend-resident incremental maintenance.

Set ``BENCH_SMOKE=1`` to run the smallest size only (the CI smoke mode).
"""

import os

import pytest

from bench_utils import emit_bench_json, make_dirty_customers, report_series, timed
from repro import Semandaq, SemandaqConfig
from repro.backends import SqliteBackend
from repro.datasets import paper_cfds
from repro.detection.detector import ErrorDetector
from repro.monitor.updates import Update

SIZES = [600] if os.environ.get("BENCH_SMOKE") else [600, 2400, 9600]
#: number of per-tid UPDATE deltas applied per round (the update batch)
BATCH = 24
_CFDS = paper_cfds()
_WORKLOADS = {
    size: make_dirty_customers(size, rate=0.04, seed=307 + size)[1].dirty
    for size in SIZES
}


def _delta_batch(relation):
    """A fixed batch of idempotent per-tid cell updates."""
    tids = relation.tids()[:BATCH]
    return [(tid, {"STR": f"Delta Street {tid}"}) for tid in tids]


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("mode", ["full_resync", "delta"])
def test_backend_sync_cost(benchmark, mode, size):
    """Wall time of bringing the backend up to date after an update batch."""
    relation = _WORKLOADS[size].copy()
    backend = SqliteBackend()
    backend.add_relation(relation)

    if mode == "full_resync":
        # the pre-delta protocol: reload the whole relation
        def sync():
            backend.add_relation(relation, replace=True)

    else:
        batch = _delta_batch(relation)

        def sync():
            for tid, changes in batch:
                backend.update_row("customer", tid, changes)

    benchmark(sync)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["rows"] = size
    benchmark.extra_info["statements"] = 1 if mode == "full_resync" else BATCH
    backend.close()


def test_delta_synced_detection_matches_full_resync():
    """Guard-rail: a monitored, delta-synced system reports exactly what a
    freshly bulk-loaded detector reports, with a single bulk load ever."""
    rows = []
    for size in SIZES:
        system = Semandaq(config=SemandaqConfig(backend="sqlite"))
        system.register_relation(_WORKLOADS[size].copy())
        system.add_cfds(_CFDS)
        relation = system.database.relation("customer")
        template = relation.get(relation.tids()[0])
        monitor = system.monitor("customer")
        _, apply_ms = timed(
            monitor.apply_batch,
            [
                Update.insert(dict(template, STR="A Brand New Street")),
                Update.modify(relation.tids()[1], {"CNT": "Narnia"}),
                Update.delete(relation.tids()[2]),
            ],
        )
        delta_report, detect_ms = timed(system.detect, "customer")
        assert system.full_sync_count == 1  # registration only

        oracle_backend = SqliteBackend()
        oracle_backend.add_relation(system.database.relation("customer"))
        oracle = ErrorDetector(oracle_backend, use_sql=True).detect(
            "customer", system.constraints.cfds("customer")
        )
        oracle_backend.close()
        assert delta_report.vio() == oracle.vio()
        assert delta_report.dirty_tids() == oracle.dirty_tids()
        rows.append(
            {
                "rows": size,
                "violations": delta_report.total_violations(),
                "full_syncs": system.full_sync_count,
                "delta_statements": len(system.monitor("customer").log),
                "apply_batch_ms": round(apply_ms, 3),
                "detect_ms": round(detect_ms, 3),
            }
        )
        system.close()
    report_series("INCR-SYNC parity", rows)
    emit_bench_json("INCR-SYNC", rows)
