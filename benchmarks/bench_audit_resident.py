"""AUDIT-RESIDENT — data auditing: ship-the-relation-back vs resident reads.

PR 9 extracts the read-access half of the repair pushdown into the shared
:class:`~repro.sources.backend.BackendTupleSource` layer and re-bases the
auditor on it.  The old protocol materialises the whole relation out of
the storage backend (``to_relation``) and classifies every tuple by Python
iteration over the shipped copy.  The resident auditor materialises only
the *dirty* rows (one ``row_fetch`` of the report's dirty tids — every
violation member is dirty, so the majority checks are decidable from that
partial view), counts the clean side with pushed-down applicability
aggregates (``attr_freq``), and takes the quality map's tid universe from
the catalog row count.

Two series on SQLite at 600/2400/9600 rows, same CFDs, noise and
violation report for both:

* **``ship_back``** — ``to_relation()`` + the native full-relation
  auditor: the transfer and the per-tuple classification walk grow
  linearly with the data;
* **``resident``** — ``audit_source`` over a ``BackendTupleSource``:
  only dirty rows and aggregate rows cross the backend boundary, so cost
  tracks the dirty region.

``test_resident_audits_match_and_win`` is the guard-rail: report-for-report
parity at every size and an outright resident win at the largest size.
Set ``BENCH_SMOKE=1`` to run the smallest size only (the CI smoke mode).
"""

import os

import pytest

from bench_utils import emit_bench_json, report_series, timed
from repro.audit.report import DataAuditor
from repro.backends import SqliteBackend
from repro.datasets import generate_customers, inject_noise, paper_cfds
from repro.detection.detector import ErrorDetector
from repro.sources import BackendTupleSource

SIZES = [600] if os.environ.get("BENCH_SMOKE") else [600, 2400, 9600]

_CFDS = paper_cfds()
_WORKLOADS = {
    size: inject_noise(
        generate_customers(size, seed=327 + size),
        rate=0.04,
        seed=328 + size,
        attributes=["CITY", "STR"],
    ).dirty
    for size in SIZES
}


def _loaded_backend(size):
    backend = SqliteBackend()
    backend.add_relation(_WORKLOADS[size].copy())
    report = ErrorDetector(backend, use_sql=True).detect("customer", _CFDS)
    return backend, report


def _ship_back_audit(backend, report):
    """The pre-split protocol: move the relation out, audit natively."""
    return DataAuditor().audit(backend.to_relation("customer"), _CFDS, report)


def _resident_audit(backend, report):
    """The resident protocol: dirty rows + pushed-down aggregates only."""
    source = BackendTupleSource(backend, "customer")
    audit = DataAuditor().audit_source(source, _CFDS, report)
    return audit, source


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("mode", ["ship_back", "resident"])
def test_audit_modes(benchmark, mode, size):
    """Wall time of one audit per transfer mode and size.

    Neither mode mutates the backend copy, so repeated benchmark rounds
    see identical data; the violation report is computed once outside the
    timed region (both modes consume the same one).
    """
    backend, report = _loaded_backend(size)
    if mode == "resident":
        audit, source = benchmark(_resident_audit, backend, report)
        benchmark.extra_info["statements"] = len(source.last_sql)
    else:
        audit = benchmark(_ship_back_audit, backend, report)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["rows"] = size
    benchmark.extra_info["dirty_tuples"] = audit.dirty_tuple_count()
    backend.close()


def test_resident_audits_match_and_win():
    """Guard-rail: report parity at every size, resident win at the largest."""
    rows = []
    statements = 0
    for size in SIZES:
        backend, report = _loaded_backend(size)
        shipped_ms = resident_ms = None
        for _ in range(3):  # best-of-3 to keep the win assertion noise-proof
            shipped, ms = timed(_ship_back_audit, backend, report)
            shipped_ms = ms if shipped_ms is None else min(shipped_ms, ms)
            (resident, source), ms = timed(_resident_audit, backend, report)
            resident_ms = ms if resident_ms is None else min(resident_ms, ms)
        assert resident.to_dict() == shipped.to_dict()
        assert (
            resident.tuple_classification.counts()
            == shipped.tuple_classification.counts()
        )
        assert resident.quality_map.boundaries == shipped.quality_map.boundaries
        statements = len(source.last_sql)
        rows.append(
            {
                "rows": size,
                "dirty_tuples": resident.dirty_tuple_count(),
                "statements": statements,
                "resident_ms": round(resident_ms, 3),
                "ship_back_ms": round(shipped_ms, 3),
            }
        )
        backend.close()
    report_series("AUDIT-RESIDENT parity", rows)
    largest = rows[-1]
    assert largest["resident_ms"] < largest["ship_back_ms"], (
        "the resident audit must beat the materialise-then-audit path "
        f"at {largest['rows']} rows: {largest}"
    )
    emit_bench_json("AUDIT-RESIDENT", rows, metrics={"statements": statements})
