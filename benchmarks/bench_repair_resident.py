"""REPAIR-RESIDENT — batch repair: ship-the-relation-back vs resident planning.

PR 7 splits the data cleanser into a pure planner over a
``RepairDataSource``.  The old protocol materialises the whole relation out
of the storage backend (``to_relation``) and answers every relational
sub-problem — violation collection, group membership, value frequencies —
by Python iteration over the shipped copy.  The resident source leaves the
relation in the backend: violations come from the pushed-down ``detect()``,
frequencies from one ``GROUP BY``/``COUNT`` aggregate per attribute, and
the planner's working set is *closed* on demand (a ``group_stats``
aggregate dismisses already-covered LHS groups by count; only the remainder
pay a sargable member enumeration plus a row fetch).

Two series on SQLite at 600/2400/9600 rows, same CFDs and noise for both:

* **``ship_back``** — ``to_relation()`` + the native full-relation
  repairer: the relation transfer and full-relation scans dominate and
  grow linearly with the data;
* **``resident``** — ``BackendRepairSource`` + ``repair_with_source``:
  only violating tuples, closure members and aggregate rows cross the
  backend boundary, so cost tracks the *dirty region*, not the relation.

The primary workload keeps the noise on CITY/STR — ZIP-keyed LHS groups
of ~3 tuples — so violations stay localised, the regime the pushdown is
built for.  The **blanket-group series** measures the opposite regime: CNT
noise under ``[CC] -> [CNT]`` turns whole countries into one multi-tuple
violation, dragging most of the relation into the working set.  There the
pure-resident source pays O(N / chunk) ``IN``-restricted fetches to ship
nearly everything anyway; the adaptive source
(``fetch_threshold=0.5``, the facade default) detects the regime and
switches to one keyset-paged full scan instead.

``test_resident_repairs_match_and_win`` is the guard-rail: change-for-change
parity at every size and an outright resident win at the largest size.
``test_blanket_groups_adaptive_fallback`` guards the pathological regime:
parity again, plus the adaptive invariant — the fallback engaged or the
fetched fraction stayed at or under the threshold — and an adaptive win
over the pure-resident source at the largest size.
Set ``BENCH_SMOKE=1`` to run the smallest size only (the CI smoke mode).
"""

import os

import pytest

from bench_utils import emit_bench_json, report_series, timed
from repro.backends import SqliteBackend
from repro.datasets import generate_customers, inject_noise, paper_cfds
from repro.repair.repairer import BatchRepairer
from repro.repair.source import BackendRepairSource

SIZES = [600] if os.environ.get("BENCH_SMOKE") else [600, 2400, 9600]

_CFDS = paper_cfds()
_WORKLOADS = {
    size: inject_noise(
        generate_customers(size, seed=307 + size),
        rate=0.04,
        seed=308 + size,
        attributes=["CITY", "STR"],
    ).dirty
    for size in SIZES
}
#: the blanket-group pathology: CNT noise under [CC] -> [CNT] dirties
#: whole countries, so nearly every tuple lands in the working set
_BLANKET_WORKLOADS = {
    size: inject_noise(
        generate_customers(size, seed=317 + size),
        rate=0.04,
        seed=318 + size,
        attributes=["CNT"],
    ).dirty
    for size in SIZES
}


def _loaded_backend(size, workloads=_WORKLOADS):
    backend = SqliteBackend()
    backend.add_relation(workloads[size].copy())
    return backend


def _ship_back_repair(backend):
    """The pre-split protocol: move the relation out, repair natively."""
    return BatchRepairer().repair(backend.to_relation("customer"), _CFDS)


def _resident_repair(backend, fetch_threshold=None):
    """The resident protocol: plan over the backend, fetch only what's needed."""
    source = BackendRepairSource(
        backend, "customer", fetch_threshold=fetch_threshold
    )
    repair = BatchRepairer().repair_with_source(source, _CFDS)
    return repair, source


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("mode", ["ship_back", "resident"])
def test_batch_repair_modes(benchmark, mode, size):
    """Wall time of one batch repair per transfer mode and size.

    Neither mode mutates the backend copy (the planner owns its working
    relation), so repeated benchmark rounds see identical data.
    """
    backend = _loaded_backend(size)
    if mode == "resident":
        repair, source = benchmark(_resident_repair, backend)
        benchmark.extra_info["rows_fetched"] = source.stats["rows_fetched"]
    else:
        repair = benchmark(_ship_back_repair, backend)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["rows"] = size
    benchmark.extra_info["cells_changed"] = len(repair.changes)
    backend.close()


def _change_keys(repair):
    return [
        (change.tid, change.attribute, change.old_value, change.new_value, change.cost)
        for change in repair.changes
    ]


def test_resident_repairs_match_and_win():
    """Guard-rail: change parity at every size, resident win at the largest."""
    rows = []
    stats = {}
    for size in SIZES:
        backend = _loaded_backend(size)
        shipped_ms = resident_ms = None
        for _ in range(3):  # best-of-3 to keep the win assertion noise-proof
            shipped, ms = timed(_ship_back_repair, backend)
            shipped_ms = ms if shipped_ms is None else min(shipped_ms, ms)
            (resident, source), ms = timed(_resident_repair, backend)
            resident_ms = ms if resident_ms is None else min(resident_ms, ms)
        assert _change_keys(resident) == _change_keys(shipped)
        assert resident.residual_violations == shipped.residual_violations
        assert resident.source == "backend"
        stats = dict(source.stats)
        rows.append(
            {
                "rows": size,
                "cells_changed": len(resident.changes),
                "rows_fetched": source.stats["rows_fetched"],
                "resident_ms": round(resident_ms, 3),
                "ship_back_ms": round(shipped_ms, 3),
            }
        )
        backend.close()
    report_series("REPAIR-RESIDENT parity", rows)
    largest = rows[-1]
    assert largest["resident_ms"] < largest["ship_back_ms"], (
        "resident repair must beat the materialise-then-repair path "
        f"at {largest['rows']} rows: {largest}"
    )
    emit_bench_json(
        "REPAIR-RESIDENT",
        rows,
        metrics={
            "groups_checked": stats.get("groups_checked", 0),
            "groups_expanded": stats.get("groups_expanded", 0),
        },
    )


def test_blanket_groups_adaptive_fallback():
    """Guard-rail for the pathological regime: CNT noise under [CC] -> [CNT].

    At every size: the adaptive source's changes match the ship-back
    oracle, and the adaptive invariant holds — the fallback engaged or
    the row-by-row fetches stayed at or under the 0.5 threshold.  At the
    largest size the adaptive source must beat the pure-resident one
    (whose chunked ``IN`` fetches ship nearly everything anyway).
    """
    threshold = 0.5
    rows = []
    for size in SIZES:
        backend = _loaded_backend(size, _BLANKET_WORKLOADS)
        shipped_ms = pure_ms = adaptive_ms = None
        for _ in range(3):  # best-of-3 to keep the win assertion noise-proof
            shipped, ms = timed(_ship_back_repair, backend)
            shipped_ms = ms if shipped_ms is None else min(shipped_ms, ms)
            (pure, pure_source), ms = timed(_resident_repair, backend)
            pure_ms = ms if pure_ms is None else min(pure_ms, ms)
            (adaptive, source), ms = timed(
                _resident_repair, backend, fetch_threshold=threshold
            )
            adaptive_ms = ms if adaptive_ms is None else min(adaptive_ms, ms)
        assert _change_keys(adaptive) == _change_keys(shipped)
        assert _change_keys(pure) == _change_keys(shipped)
        assert adaptive.residual_violations == shipped.residual_violations
        fetched = source.stats["rows_fetched"]
        assert (
            source.stats["fallback_shipback"] == 1 or fetched <= threshold * size
        ), f"adaptive invariant broken at {size} rows: {source.stats}"
        rows.append(
            {
                "rows": size,
                "cells_changed": len(adaptive.changes),
                "rows_fetched": fetched,
                "fallback": source.stats["fallback_shipback"],
                "pure_fetched": pure_source.stats["rows_fetched"],
                "adaptive_ms": round(adaptive_ms, 3),
                "pure_resident_ms": round(pure_ms, 3),
                "ship_back_ms": round(shipped_ms, 3),
            }
        )
        backend.close()
    report_series("REPAIR-RESIDENT blanket groups", rows)
    largest = rows[-1]
    if not os.environ.get("BENCH_SMOKE"):
        assert largest["adaptive_ms"] < largest["pure_resident_ms"], (
            "the adaptive fallback must beat the pure-resident source on "
            f"blanket groups at {largest['rows']} rows: {largest}"
        )
    emit_bench_json("REPAIR-RESIDENT-BLANKET", rows)
