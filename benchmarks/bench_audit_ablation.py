"""AUDIT-ABL — design ablations of the auditor.

Two choices DESIGN.md calls out:

* reusing the detector's violation report vs re-detecting inside the auditor
  (the report-reuse design is what the Semandaq facade does);
* linear vs quantile bucketing of the data quality map.
"""

import pytest

from bench_utils import emit_bench_json, make_dirty_customers, make_database, report_series, timed
from repro.audit.quality_map import build_quality_map
from repro.audit.report import DataAuditor
from repro.datasets import paper_cfds
from repro.detection.detector import ErrorDetector

SIZE = 600
_clean, _noise = make_dirty_customers(SIZE, rate=0.05, seed=131)
_DATABASE = make_database(_noise.dirty)
_CFDS = paper_cfds()
_REPORT = ErrorDetector(_DATABASE).detect("customer", _CFDS)
_RELATION = _DATABASE.relation("customer")


def test_audit_reusing_detection_report(benchmark):
    """Auditing from an existing violation report (the system's default path)."""
    auditor = DataAuditor()
    result = benchmark(auditor.audit, _RELATION, _CFDS, _REPORT)
    benchmark.extra_info["dirty_pct"] = round(result.dirty_percentage(), 2)


def test_audit_with_redetection(benchmark):
    """Ablation: re-running detection every time the auditor is invoked."""
    auditor = DataAuditor()

    def run():
        report = ErrorDetector(_DATABASE, use_sql=False).detect("customer", _CFDS)
        return auditor.audit(_RELATION, _CFDS, report)

    result = benchmark(run)
    benchmark.extra_info["dirty_pct"] = round(result.dirty_percentage(), 2)


@pytest.mark.parametrize("strategy", ["linear", "quantile"])
def test_quality_map_bucketing_strategies(benchmark, strategy):
    """Linear vs quantile shading of the quality map (cost and histogram shape)."""
    quality_map = benchmark(build_quality_map, _RELATION, _REPORT, 5, strategy)
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["histogram"] = quality_map.histogram()
    assert sum(quality_map.histogram().values()) == SIZE


def test_audit_ablation_bench_json():
    """Timed reuse-vs-redetect summary, persisted to the trajectory."""
    auditor = DataAuditor()
    result, reuse_ms = timed(auditor.audit, _RELATION, _CFDS, _REPORT)

    def redetect_and_audit():
        report = ErrorDetector(_DATABASE, use_sql=False).detect("customer", _CFDS)
        return auditor.audit(_RELATION, _CFDS, report)

    _, redetect_ms = timed(redetect_and_audit)
    rows = [
        {"path": "reuse_report", "audit_ms": round(reuse_ms, 3),
         "dirty_pct": round(result.dirty_percentage(), 2)},
        {"path": "redetect", "audit_ms": round(redetect_ms, 3),
         "dirty_pct": round(result.dirty_percentage(), 2)},
    ]
    report_series("AUDIT-ABL summary", rows)
    emit_bench_json("AUDIT-ABL", rows)
