"""DISC — CFD discovery from reference data vs support threshold.

The constraint engine can discover CFDs "automatically from reference data".
This benchmark sweeps the minimum support and reports how many constant
rules and variable CFDs are found, and how long discovery takes.
"""

import pytest

from bench_utils import emit_bench_json, report_series, timed
from repro.datasets import generate_customers
from repro.discovery.cfdminer import ConstantCfdMiner
from repro.discovery.ctane import VariableCfdDiscoverer

REFERENCE = generate_customers(400, seed=91)


@pytest.mark.parametrize("min_support", [5, 20, 80])
def test_constant_discovery_vs_support(benchmark, min_support):
    """Constant-CFD count shrinks as the support threshold rises."""
    miner = ConstantCfdMiner(min_support=min_support, min_confidence=1.0, max_lhs_size=1)
    rules = benchmark(miner.mine, REFERENCE)
    benchmark.extra_info["min_support"] = min_support
    benchmark.extra_info["rules_found"] = len(rules)
    assert all(rule.support >= min_support for rule in rules)


@pytest.mark.parametrize("min_support", [5, 20])
def test_variable_discovery_vs_support(benchmark, min_support):
    """Variable-CFD / FD discovery under the same sweep."""
    discoverer = VariableCfdDiscoverer(
        min_support=min_support, min_confidence=1.0, max_lhs_size=2, max_conditions=1
    )
    discovered = benchmark.pedantic(discoverer.discover, args=(REFERENCE,), rounds=1, iterations=1)
    benchmark.extra_info["min_support"] = min_support
    benchmark.extra_info["cfds_found"] = len(discovered)
    fds = {(item.cfd.lhs, item.cfd.rhs) for item in discovered if not item.conditional}
    assert (("CC",), ("CNT",)) in fds


def test_discovery_bench_json():
    """Timed constant-rule mining sweep, persisted to the trajectory."""
    rows = []
    for min_support in (5, 20, 80):
        miner = ConstantCfdMiner(
            min_support=min_support, min_confidence=1.0, max_lhs_size=1
        )
        rules, mine_ms = timed(miner.mine, REFERENCE)
        rows.append(
            {
                "min_support": min_support,
                "mine_ms": round(mine_ms, 3),
                "rules_found": len(rules),
            }
        )
    report_series("DISC summary", rows)
    emit_bench_json("DISC", rows)
