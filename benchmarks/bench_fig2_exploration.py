"""FIG2 — Data exploration using CFDs (paper Fig. 2).

Regenerates the drill-down content of the demo (CFD list with violation
counts → pattern tuples → LHS matches → RHS values) and benchmarks the
navigation path on a larger generated relation, which is what the explorer
must sustain interactively.
"""

import pytest

from bench_utils import emit_bench_json, make_dirty_customers, make_system, report_series, timed


def drill_down(system):
    explorer = system.explorer("customer")
    summaries = explorer.list_cfds()
    phi2 = next(s for s in summaries if s.cfd_id == "phi2")
    patterns = explorer.patterns_for(phi2.cfd_id)
    lhs = explorer.lhs_matches(phi2.cfd_id, 0)
    rhs = explorer.rhs_values(phi2.cfd_id, 0, lhs[0].lhs_values) if lhs else []
    return summaries, patterns, lhs, rhs


def test_fig2_demo_content(demo_system, benchmark):
    """The exact walk of Fig. 2 on the paper's example instance."""
    demo_system.detect("customer")
    summaries, patterns, lhs, rhs = benchmark(drill_down, demo_system)
    _, drill_ms = timed(drill_down, demo_system)
    cfd_rows = [
        {"cfd": s.cfd_id, "violating_tuples": s.violating_tuples}
        for s in summaries
    ]
    report_series("FIG2 CFD list (violation counts guide navigation)", cfd_rows)
    emit_bench_json("FIG2", cfd_rows, metrics={"drill_down_ms": round(drill_ms, 3)})
    report_series(
        "FIG2 drill-down on phi2",
        [
            {"level": "pattern", "pattern": patterns[0].rendered, "violations": patterns[0].violating_tuples},
            {"level": "lhs", "values": lhs[0].lhs_values, "violations": lhs[0].violating_tuples},
            {"level": "rhs", "distinct_values": len(rhs)},
        ],
    )
    assert {entry.value for entry in rhs} == {"Mayfield Rd", "Crichton St"}


@pytest.mark.parametrize("size", [300, 1000])
def test_fig2_navigation_scales(benchmark, size):
    """Drill-down latency on generated data of increasing size."""
    _clean, noise = make_dirty_customers(size, rate=0.03, seed=size)
    system = make_system(noise.dirty)
    system.detect("customer")
    summaries, _patterns, lhs, _rhs = benchmark(drill_down, system)
    benchmark.extra_info["size"] = size
    benchmark.extra_info["violating_tuples_phi2"] = next(
        s.violating_tuples for s in summaries if s.cfd_id == "phi2"
    )
    assert lhs, "expected at least one LHS group for the UK pattern"
