"""REP-QUALITY — repair precision/recall vs injected noise rate.

Companion experiment of [8] (VLDB 2007): the heuristic repair produces
candidate repairs of high quality, degrading gracefully as the error rate
grows.  Ground truth comes from the seeded noise injector, so precision and
recall are measured exactly.
"""

import pytest

from bench_utils import emit_bench_json, make_dirty_customers, report_series, timed
from repro.datasets import paper_cfds
from repro.repair.repairer import BatchRepairer, repair_quality


def run_repair(dirty, cfds):
    return BatchRepairer().repair(dirty, cfds)


@pytest.mark.parametrize("rate", [0.02, 0.05, 0.10])
def test_repair_quality_vs_noise(benchmark, rate):
    """Precision / recall / F1 against ground truth at several noise rates."""
    clean, noise = make_dirty_customers(400, rate=rate, seed=int(rate * 1000) + 3)
    cfds = paper_cfds()
    repair = benchmark.pedantic(run_repair, args=(noise.dirty, cfds), rounds=1, iterations=1)
    quality = repair_quality(repair, clean, noise.dirty)
    benchmark.extra_info.update(
        {
            "noise_rate": rate,
            "precision": round(quality["precision"], 3),
            "recall": round(quality["recall"], 3),
            "f1": round(quality["f1"], 3),
            "cells_changed": int(quality["changed_cells"]),
            "cells_corrupted": int(quality["corrupted_cells"]),
            "residual_violations": repair.residual_violations,
        }
    )
    report_series(
        f"REP-QUALITY at noise rate {rate}",
        [
            {
                "precision": round(quality["precision"], 3),
                "recall": round(quality["recall"], 3),
                "f1": round(quality["f1"], 3),
                "residual_violations": repair.residual_violations,
            }
        ],
    )
    assert quality["precision"] > 0.3
    assert repair.residual_violations <= repair.iterations


def test_repair_quality_swap_only_errors(benchmark):
    """Swap errors (plausible wrong values) are the headline case of [8]."""
    from repro.datasets import generate_customers, inject_noise

    clean = generate_customers(400, seed=77)
    noise = inject_noise(clean, rate=0.05, seed=78, attributes=["CNT", "CITY", "CC"], kinds=("swap",))
    repair = benchmark.pedantic(
        run_repair, args=(noise.dirty, paper_cfds()), rounds=1, iterations=1
    )
    quality = repair_quality(repair, clean, noise.dirty)
    benchmark.extra_info["precision"] = round(quality["precision"], 3)
    benchmark.extra_info["recall"] = round(quality["recall"], 3)
    assert quality["precision"] >= 0.5


def test_repair_quality_bench_json():
    """Precision/recall/F1 at two noise rates, persisted to the trajectory."""
    rows = []
    for rate in (0.02, 0.08):
        clean, noise = make_dirty_customers(400, rate=rate, seed=int(rate * 1000) + 3)
        repair, repair_ms = timed(run_repair, noise.dirty, paper_cfds())
        quality = repair_quality(repair, clean, noise.dirty)
        rows.append(
            {
                "noise_rate": rate,
                "precision": round(quality["precision"], 3),
                "recall": round(quality["recall"], 3),
                "f1": round(quality["f1"], 3),
                "repair_ms": round(repair_ms, 3),
                "residual_violations": repair.residual_violations,
            }
        )
    report_series("REP-QUALITY summary", rows)
    emit_bench_json("REP-QUALITY", rows)
