"""Validate the BENCH_*.json trajectory files a benchmark run produced.

CI runs this after the smoke benchmarks::

    PYTHONPATH=../src python validate_bench_json.py \
        --expect INCR-SYNC DELTA-BATCH SQL-DELTA-PLANS BATCH-RESIDENT

Every ``BENCH_*.json`` under ``--results-dir`` is schema-checked against
:func:`repro.obs.benchjson.validate_bench_payload` (the same definition the
emitters use), and every ``--expect`` benchmark must have produced a file.
Exit status 1 on any problem, with one line per finding.
"""

from __future__ import annotations

import argparse
import glob
import os
import sys

from repro.obs import benchjson


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--results-dir",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "results"),
        help="directory holding the BENCH_*.json files (default: benchmarks/results)",
    )
    parser.add_argument(
        "--expect",
        nargs="*",
        default=[],
        metavar="NAME",
        help="benchmark names that must have emitted a file (e.g. INCR-SYNC)",
    )
    args = parser.parse_args(argv)

    problems = []
    pattern = os.path.join(args.results_dir, f"{benchjson.BENCH_FILE_PREFIX}*.json")
    paths = sorted(glob.glob(pattern))
    if not paths:
        problems.append(f"no {benchjson.BENCH_FILE_PREFIX}*.json files under {args.results_dir}")
    for path in paths:
        try:
            payload = benchjson.load_payload(path)
        except (OSError, ValueError) as error:
            problems.append(f"{os.path.basename(path)}: unreadable ({error})")
            continue
        for problem in benchjson.validate_bench_payload(payload):
            problems.append(f"{os.path.basename(path)}: {problem}")

    present = {os.path.basename(path) for path in paths}
    for name in args.expect:
        file_name = benchjson.bench_file_name(name)
        if file_name not in present:
            problems.append(f"expected benchmark {name} did not emit {file_name}")

    if problems:
        for problem in problems:
            print(f"bench-json: {problem}", file=sys.stderr)
        return 1
    print(f"bench-json: {len(paths)} trajectory file(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
