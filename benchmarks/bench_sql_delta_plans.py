"""SQL-DELTA-PLANS — row-value semi-joins vs chunked OR re-checks.

The ``sql_delta`` incremental mode restricts its delta ``Q_V`` (and the
backend-resident group-member enumeration) to the affected LHS-value
groups.  Two restriction shapes exist for a multi-attribute LHS on SQLite:

* **``row_values``** — ``(t.A, t.B) IN (VALUES (?, ?), ...)`` (SQLite
  3.15+): one flat expression the engine can drive through the CFD-LHS
  index as a semi-join, chunked only by the connection's bound-parameter
  budget;
* **``portable``** — the OR-of-conjunctions form every dialect parses,
  chunked at the expression-depth cap (200 disjuncts), so a large re-check
  decomposes into many statements.

This benchmark updates one member of *every* group per round — the whole
group population is affected — at 50/500/5000 groups, and times the
monitored round (batch ship + delta re-check + report).  The gap grows
with the affected-group count: the row-value plan keeps one statement per
parameter-budget chunk while the portable plan pays per-200-group
statements plus their repeated scans.

``test_plans_agree_with_native`` is the guard-rail: both plans must report
exactly what the native evaluation mode reports, at every configured size.

Set ``BENCH_SMOKE=1`` to run the smallest size only (the CI smoke mode).
"""

import os
import time

import pytest

from bench_utils import emit_bench_json, report_series
from repro.backends import SqliteBackend
from repro.backends.dialect import sqlite_row_values_supported
from repro.core.cfd import CFD
from repro.core.pattern import PatternTuple
from repro.detection.incremental import (
    NATIVE_MODE,
    SQL_DELTA_MODE,
    IncrementalDetector,
)
from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.engine.types import RelationSchema

GROUPS = [50] if os.environ.get("BENCH_SMOKE") else [50, 500, 5000]

#: plan name -> the generator policy that produces it
PLANS = {"row_values": "auto", "portable": "portable"}

_ROW_VALUE_SKIP = "sqlite3 library predates 3.15 (no row values) or forced off"

SCHEMA = RelationSchema.of("r", ["A", "B", "C"])

CFD_TWO_LHS = CFD(
    relation="r",
    lhs=("A", "B"),
    rhs=("C",),
    patterns=(PatternTuple.of({"A": "_", "B": "_", "C": "_"}),),
    name="phi_plans",
)


def _relation(groups: int) -> Relation:
    """``groups`` two-member LHS groups, initially agreeing on the RHS."""
    rows = []
    for index in range(groups):
        rows.append({"A": f"a{index}", "B": f"b{index % 97}", "C": "same"})
        rows.append({"A": f"a{index}", "B": f"b{index % 97}", "C": "same"})
    return Relation.from_rows(SCHEMA, rows)


def _detector(groups: int, mode: str, plan: str = "auto"):
    database = Database()
    database.add_relation(_relation(groups))
    if mode == NATIVE_MODE:
        return IncrementalDetector(database, "r", [CFD_TWO_LHS]), None
    mirror = SqliteBackend()
    mirror.add_relation(database.relation("r"))
    detector = IncrementalDetector(
        database, "r", [CFD_TWO_LHS], mirror=mirror,
        mode=SQL_DELTA_MODE, delta_plan=plan,
    )
    return detector, mirror


def _round(detector, groups: int, toggle) -> int:
    """Update one member of every group, re-check, and report."""
    suffix = "x" if toggle[0] else "y"
    toggle[0] = not toggle[0]
    with detector.batch():
        for tid in range(0, 2 * groups, 2):
            detector.update(tid, {"C": f"diff_{suffix}"})
    return detector.report().total_violations()


def _skip_unsupported(plan: str) -> None:
    if plan == "row_values" and not sqlite_row_values_supported():
        pytest.skip(_ROW_VALUE_SKIP)


@pytest.mark.parametrize("groups", GROUPS)
@pytest.mark.parametrize("plan", list(PLANS))
def test_recheck_round_latency(benchmark, plan, groups):
    """Wall time of one all-groups-affected monitored round per plan."""
    _skip_unsupported(plan)
    detector, mirror = _detector(groups, SQL_DELTA_MODE, PLANS[plan])
    toggle = [True]

    result = benchmark(_round, detector, groups, toggle)
    assert result == groups  # every group violates after the round
    benchmark.extra_info["plan"] = plan
    benchmark.extra_info["groups"] = groups
    benchmark.extra_info["delta_queries"] = detector.delta_queries
    if mirror is not None:
        mirror.close()


def _best_of(runs, fn, *args):
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def test_plans_agree_with_native():
    """Guard-rail: both plan shapes report exactly what native mode does."""
    rows = []
    for groups in GROUPS:
        reports = {}
        costs = {}
        for plan in PLANS:
            if plan == "row_values" and not sqlite_row_values_supported():
                continue
            detector, mirror = _detector(groups, SQL_DELTA_MODE, PLANS[plan])
            toggle = [True]
            _round(detector, groups, toggle)
            detector.reset_cost_counter()
            elapsed = _best_of(3, _round, detector, groups, toggle)
            reports[plan] = sorted(
                (v.kind, v.tids, v.lhs_values, v.pattern_index)
                for v in detector.report().violations
            )
            costs[plan] = {
                "round_ms": round(elapsed * 1e3, 2),
                "delta_queries_per_round": detector.delta_queries // 3,
            }
            mirror.close()
        native, _ = _detector(groups, NATIVE_MODE)
        toggle = [True]
        _round(native, groups, toggle)
        _round(native, groups, toggle)
        _round(native, groups, toggle)
        _round(native, groups, toggle)
        native_keys = sorted(
            (v.kind, v.tids, v.lhs_values, v.pattern_index)
            for v in native.report().violations
        )
        for plan, keys in reports.items():
            assert keys == native_keys, f"{plan} diverged at {groups} groups"
        rows.append(
            {
                "groups": groups,
                **{
                    f"{plan}_{metric}": value
                    for plan, plan_costs in costs.items()
                    for metric, value in plan_costs.items()
                },
            }
        )
    report_series("SQL-DELTA-PLANS", rows)
    emit_bench_json(
        "SQL-DELTA-PLANS",
        rows,
        metrics={"row_values_supported": int(sqlite_row_values_supported())},
    )
