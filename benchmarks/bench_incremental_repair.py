"""REP-INCR — incremental repair (IncRepair) vs full re-repair under updates.

Companion experiment of [8]: when a cleansed database receives a batch of
updates, repairing only the violations that involve the updated tuples is
much cheaper than re-repairing the whole relation, and it never touches
previously cleansed data.
"""

import pytest

from bench_utils import emit_bench_json, report_series, timed
from repro.datasets import generate_customers, paper_cfds
from repro.repair.incremental import IncrementalRepairer
from repro.repair.repairer import BatchRepairer

RELATION_SIZE = 600


def corrupted_batch(relation, count):
    """New rows cloned from existing UK rows, each with a conflicting street.

    UK rows are used so every inserted row violates phi2 ([CNT='UK', ZIP] ->
    [STR]) against its clone — the update batch is guaranteed to need repair.
    """
    uk_tids = [tid for tid, row in relation.rows() if row.get("CNT") == "UK"]
    rows = []
    for index in range(count):
        row = dict(relation.get(uk_tids[index % len(uk_tids)]))
        row["STR"] = f"Wrong Street {index}"
        rows.append(row)
    return rows


@pytest.mark.parametrize("batch_size", [1, 10, 50])
def test_incremental_repair_vs_batch_size(benchmark, batch_size):
    """IncRepair cost grows with the update batch, not with the relation."""
    cfds = paper_cfds()

    def run():
        relation = generate_customers(RELATION_SIZE, seed=55)
        batch = corrupted_batch(relation, batch_size)
        repairer = IncrementalRepairer()
        new_tids, repair = repairer.insert_and_repair(relation, cfds, batch)
        repairer.verify_untouched(repair, protected_tids=set(relation.tids()) - set(new_tids))
        return repair

    repair = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["batch_size"] = batch_size
    benchmark.extra_info["cells_changed"] = len(repair.changes)
    assert repair.changed_tids() != set() or batch_size == 0


def test_full_rerepair_baseline(benchmark):
    """The full-repair baseline IncRepair is compared against (50-row batch)."""
    cfds = paper_cfds()

    def run():
        relation = generate_customers(RELATION_SIZE, seed=55)
        for row in corrupted_batch(relation, 50):
            relation.insert(row)
        return BatchRepairer().repair(relation, cfds)

    repair = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cells_changed"] = len(repair.changes)
    assert len(repair.changes) > 0


def test_incremental_repair_bench_json():
    """Timed IncRepair-vs-full summary (10-row batch), persisted."""
    cfds = paper_cfds()

    def incremental():
        relation = generate_customers(RELATION_SIZE, seed=55)
        batch = corrupted_batch(relation, 10)
        return IncrementalRepairer().insert_and_repair(relation, cfds, batch)[1]

    def full():
        relation = generate_customers(RELATION_SIZE, seed=55)
        for row in corrupted_batch(relation, 10):
            relation.insert(row)
        return BatchRepairer().repair(relation, cfds)

    inc_repair, inc_ms = timed(incremental)
    full_repair, full_ms = timed(full)
    rows = [
        {"path": "incremental", "batch_size": 10, "repair_ms": round(inc_ms, 3),
         "cells_changed": len(inc_repair.changes)},
        {"path": "full_rerepair", "batch_size": 10, "repair_ms": round(full_ms, 3),
         "cells_changed": len(full_repair.changes)},
    ]
    report_series("REP-INCR summary", rows)
    emit_bench_json("REP-INCR", rows)
