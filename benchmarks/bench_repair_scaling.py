"""REP-SCALE — repair wall time vs relation size and noise rate.

Companion experiment of [8]: repair time grows with the number of violations
(hence with both relation size and error rate); the benchmark reports the
series so the growth shape can be compared.
"""

import pytest

from bench_utils import emit_bench_json, make_dirty_customers, report_series, timed
from repro.datasets import paper_cfds
from repro.repair.repairer import BatchRepairer


def run_repair(dirty):
    return BatchRepairer().repair(dirty, paper_cfds())


@pytest.mark.parametrize("size", [200, 400, 800])
def test_repair_time_vs_size(benchmark, size):
    """Repair time as the relation grows at a fixed 4% error rate."""
    _clean, noise = make_dirty_customers(size, rate=0.04, seed=size + 1)
    repair = benchmark.pedantic(run_repair, args=(noise.dirty,), rounds=1, iterations=1)
    benchmark.extra_info["size"] = size
    benchmark.extra_info["cells_changed"] = len(repair.changes)
    benchmark.extra_info["iterations"] = repair.iterations
    assert repair.iterations >= 1


@pytest.mark.parametrize("rate", [0.02, 0.08])
def test_repair_time_vs_noise(benchmark, rate):
    """Repair time as the error rate grows at a fixed size of 500 tuples."""
    _clean, noise = make_dirty_customers(500, rate=rate, seed=int(rate * 500) + 9)
    repair = benchmark.pedantic(run_repair, args=(noise.dirty,), rounds=1, iterations=1)
    benchmark.extra_info["noise_rate"] = rate
    benchmark.extra_info["cells_changed"] = len(repair.changes)
    assert len(repair.changes) >= 0


def test_repair_scaling_bench_json():
    """Timed size sweep at 4% noise, persisted to the trajectory."""
    rows = []
    for size in (200, 400):
        _clean, noise = make_dirty_customers(size, rate=0.04, seed=size + 1)
        repair, repair_ms = timed(run_repair, noise.dirty)
        rows.append(
            {
                "size": size,
                "repair_ms": round(repair_ms, 3),
                "cells_changed": len(repair.changes),
                "iterations": repair.iterations,
            }
        )
    report_series("REP-SCALE summary", rows)
    emit_bench_json("REP-SCALE", rows)
