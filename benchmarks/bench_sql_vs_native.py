"""SQL-ABL — detection through generated SQL vs the native Python detector.

The paper's technique pushes detection into the DBMS as SQL; this repository
keeps a native (direct-iteration) detector as an oracle.  The ablation shows
both produce identical results and compares their cost on the embedded
engine, where the SQL path pays for generality (tableau join + grouping)
while the native path exploits in-memory indexes directly.
"""

import pytest

from bench_utils import emit_bench_json, make_dirty_customers, make_database, report_series, timed
from repro.datasets import paper_cfds
from repro.detection.detector import ErrorDetector

SIZE = 600
_clean, _noise = make_dirty_customers(SIZE, rate=0.04, seed=151)
_CFDS = paper_cfds()


@pytest.mark.parametrize("use_sql", [True, False], ids=["sql", "native"])
def test_detection_sql_vs_native(benchmark, use_sql):
    """Wall time of the two detection paths on the same workload."""
    database = make_database(_noise.dirty.copy())
    detector = ErrorDetector(database, use_sql=use_sql)
    report = benchmark(detector.detect, "customer", _CFDS)
    benchmark.extra_info["path"] = "sql" if use_sql else "native"
    benchmark.extra_info["violations"] = report.total_violations()


def test_sql_and_native_agree():
    """Both paths compute identical vio(t) maps — the ablation's sanity check."""
    database = make_database(_noise.dirty.copy())
    sql_detector = ErrorDetector(database, use_sql=True)
    native_detector = ErrorDetector(database, use_sql=False)
    sql_report, sql_ms = timed(sql_detector.detect, "customer", _CFDS)
    native_report, native_ms = timed(native_detector.detect, "customer", _CFDS)
    assert sql_report.vio() == native_report.vio()
    assert sql_report.dirty_tids() == native_report.dirty_tids()
    rows = [
        {"path": "sql", "rows": SIZE, "detect_ms": round(sql_ms, 3),
         "violations": sql_report.total_violations()},
        {"path": "native", "rows": SIZE, "detect_ms": round(native_ms, 3),
         "violations": native_report.total_violations()},
    ]
    report_series("SQL-NATIVE summary", rows)
    emit_bench_json("SQL-NATIVE", rows)
