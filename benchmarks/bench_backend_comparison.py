"""BACKEND-CMP — detection pushdown on the embedded engine vs SQLite.

The storage-backend subsystem makes the paper's "Database Servers" layer
pluggable; this benchmark compares the two shipped backends running the
*identical* generated detection queries (dialect differences aside) on the
dirty-customer workload at three scales.  The embedded engine interprets the
SQL subset row by row in Python; SQLite executes the same joins and
groupings natively with B-tree indexes on the CFD LHS attributes, so the gap
between the two series is the cost of interpreting SQL in Python — i.e. the
payoff of real-DBMS pushdown.  Loading time is excluded: each benchmark
round detects on an already-loaded backend, mirroring a resident database.
"""

import pytest

from bench_utils import emit_bench_json, make_dirty_customers, report_series, timed
from repro.backends import create_backend
from repro.datasets import paper_cfds
from repro.detection.detector import ErrorDetector

SIZES = [600, 2400, 9600]
_CFDS = paper_cfds()
_WORKLOADS = {
    size: make_dirty_customers(size, rate=0.04, seed=211 + size)[1].dirty
    for size in SIZES
}


def _loaded_backend(backend_name, size):
    backend = create_backend(backend_name)
    backend.add_relation(_WORKLOADS[size].copy())
    return backend


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("backend_name", ["memory", "sqlite"])
def test_detection_backend_comparison(benchmark, backend_name, size):
    """Wall time of SQL-based detection per backend and workload size."""
    backend = _loaded_backend(backend_name, size)
    detector = ErrorDetector(backend, use_sql=True)
    report = benchmark(detector.detect, "customer", _CFDS)
    benchmark.extra_info["backend"] = backend_name
    benchmark.extra_info["rows"] = size
    benchmark.extra_info["violations"] = report.total_violations()
    backend.close()


def test_backends_agree_at_every_size():
    """Both backends report identical violations on every workload size."""
    rows = []
    for size in SIZES:
        reports = {}
        timings = {}
        for backend_name in ("memory", "sqlite"):
            backend = _loaded_backend(backend_name, size)
            detector = ErrorDetector(backend, use_sql=True)
            reports[backend_name], timings[backend_name] = timed(
                detector.detect, "customer", _CFDS
            )
            backend.close()
        assert reports["memory"].vio() == reports["sqlite"].vio()
        rows.append(
            {
                "rows": size,
                "violations": reports["sqlite"].total_violations(),
                "dirty_tuples": len(reports["sqlite"].dirty_tids()),
                "memory_ms": round(timings["memory"], 3),
                "sqlite_ms": round(timings["sqlite"], 3),
            }
        )
    report_series("BACKEND-CMP parity", rows)
    emit_bench_json("BACKEND-CMP", rows)
