"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment of DESIGN.md's experiment index
(FIG2–FIG5 demo scenarios plus the performance/quality experiments).  The
helpers here build the standard workloads: clean generated customer data,
seeded noise, and a Semandaq system wired with the paper's CFDs.
"""

from __future__ import annotations

import sys

from repro import Database, Semandaq
from repro.datasets import generate_customers, inject_noise, paper_cfds

#: attributes the noise injector corrupts in the benchmark workloads — the
#: ones the paper's CFDs constrain.
NOISY_ATTRIBUTES = ["CNT", "CITY", "STR", "CC"]


def make_dirty_customers(size: int, rate: float, seed: int = 0):
    """Clean relation and noise result for a benchmark run."""
    clean = generate_customers(size, seed=seed)
    noise = inject_noise(clean, rate=rate, seed=seed + 1, attributes=NOISY_ATTRIBUTES)
    return clean, noise


def make_system(relation, cfds=None) -> Semandaq:
    """A Semandaq system with ``relation`` registered and CFDs added."""
    system = Semandaq()
    system.register_relation(relation)
    system.add_cfds(cfds if cfds is not None else paper_cfds())
    return system


def make_database(relation) -> Database:
    """A bare database holding ``relation``."""
    database = Database()
    database.add_relation(relation)
    return database


def report_series(title: str, rows) -> None:
    """Print one experiment series (visible with ``pytest -s`` / in captured logs)."""
    print(f"\n[{title}]", file=sys.stderr)
    for row in rows:
        print("  " + ", ".join(f"{key}={value}" for key, value in row.items()), file=sys.stderr)
