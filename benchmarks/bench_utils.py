"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment of DESIGN.md's experiment index
(FIG2–FIG5 demo scenarios plus the performance/quality experiments).  The
helpers here build the standard workloads: clean generated customer data,
seeded noise, and a Semandaq system wired with the paper's CFDs.
"""

from __future__ import annotations

import os
import sys
import time

from repro import Database, Semandaq
from repro.datasets import generate_customers, inject_noise, paper_cfds
from repro.obs import benchjson

#: attributes the noise injector corrupts in the benchmark workloads — the
#: ones the paper's CFDs constrain.
NOISY_ATTRIBUTES = ["CNT", "CITY", "STR", "CC"]


def make_dirty_customers(size: int, rate: float, seed: int = 0):
    """Clean relation and noise result for a benchmark run."""
    clean = generate_customers(size, seed=seed)
    noise = inject_noise(clean, rate=rate, seed=seed + 1, attributes=NOISY_ATTRIBUTES)
    return clean, noise


def make_system(relation, cfds=None) -> Semandaq:
    """A Semandaq system with ``relation`` registered and CFDs added."""
    system = Semandaq()
    system.register_relation(relation)
    system.add_cfds(cfds if cfds is not None else paper_cfds())
    return system


def make_database(relation) -> Database:
    """A bare database holding ``relation``."""
    database = Database()
    database.add_relation(relation)
    return database


def report_series(title: str, rows) -> None:
    """Print one experiment series (visible with ``pytest -s`` / in captured logs)."""
    print(f"\n[{title}]", file=sys.stderr)
    for row in rows:
        print("  " + ", ".join(f"{key}={value}" for key, value in row.items()), file=sys.stderr)


def timed(fn, *args, **kwargs):
    """Run ``fn`` and return ``(result, elapsed_ms)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, (time.perf_counter() - start) * 1000.0


def results_dir() -> str:
    """Directory the BENCH_*.json trajectories are written to.

    ``benchmarks/results/`` next to this file, overridable with the
    ``BENCH_JSON_DIR`` environment variable (CI points it at a workspace
    path it can upload as an artifact).
    """
    default = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
    return os.environ.get("BENCH_JSON_DIR", default)


def emit_bench_json(name: str, series, metrics=None, directory=None) -> str:
    """Append one trajectory entry for benchmark ``name`` and return the path.

    Every benchmark calls this exactly once with the series rows it printed
    via :func:`report_series` (concatenated, when it prints several) and an
    optional flat ``metrics`` mapping; the schema and the append/trim
    behaviour live in :mod:`repro.obs.benchjson` so CI validates against
    the same definition.
    """
    target_dir = directory or results_dir()
    os.makedirs(target_dir, exist_ok=True)
    path = os.path.join(target_dir, benchjson.bench_file_name(name))
    entry = benchjson.build_entry(series, metrics=metrics)
    benchjson.append_entry(path, name, entry)
    return path
