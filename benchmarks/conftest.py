"""Fixtures shared by the benchmark harness."""

from __future__ import annotations

import pytest

from repro import Semandaq
from repro.datasets import paper_cfds, paper_example_relation


@pytest.fixture
def demo_system():
    """The paper's hand-written example wired into a full system."""
    system = Semandaq()
    system.register_relation(paper_example_relation())
    system.add_cfds(paper_cfds())
    return system
