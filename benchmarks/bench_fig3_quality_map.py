"""FIG3 — Error detection and the data quality map (paper Fig. 3).

Regenerates the per-tuple ``vio(t)`` distribution and the shade histogram of
the tuple-level quality map, and times the map construction on generated
data of increasing dirtiness.
"""

import pytest

from bench_utils import emit_bench_json, make_dirty_customers, make_system, report_series, timed


def build_map(system):
    return system.audit("customer").quality_map


def test_fig3_demo_quality_map(demo_system, benchmark):
    """The quality map of the paper's example: Anna is the darkest tuple."""
    demo_system.detect("customer")
    quality_map = benchmark(build_map, demo_system)
    _, map_ms = timed(build_map, demo_system)
    vio_rows = [
        {"tid": tid, "vio": vio, "shade": quality_map.shade_of(tid)}
        for tid, vio in sorted(quality_map.vio.items())
    ]
    report_series("FIG3 vio(t) per tuple", vio_rows)
    emit_bench_json("FIG3", vio_rows, metrics={"quality_map_ms": round(map_ms, 3)})
    assert quality_map.bucket_of(4) == max(quality_map.buckets.values())
    assert quality_map.bucket_of(2) == 0


@pytest.mark.parametrize("rate", [0.01, 0.05, 0.10])
def test_fig3_quality_map_vs_noise(benchmark, rate):
    """Shade histogram shifts darker as the injected error rate grows."""
    _clean, noise = make_dirty_customers(600, rate=rate, seed=int(rate * 1000))
    system = make_system(noise.dirty)
    system.detect("customer")
    quality_map = benchmark(build_map, system)
    histogram = quality_map.histogram()
    benchmark.extra_info["noise_rate"] = rate
    benchmark.extra_info["histogram"] = histogram
    report_series(
        f"FIG3 shade histogram at noise rate {rate}",
        [{"shade": shade, "tuples": count} for shade, count in histogram.items()],
    )
    dirty_tuples = sum(count for shade, count in histogram.items() if shade != "clean")
    assert rate == 0.01 or dirty_tuples > 0
