"""FIG4 — The data quality report (paper Fig. 4).

Regenerates the pie chart (tuple cleanliness categories) and the
per-attribute verified/probably/arguably-clean bar chart, and times the
auditor on generated data.
"""

import pytest

from bench_utils import emit_bench_json, make_dirty_customers, make_system, report_series, timed


def audit(system):
    return system.audit("customer")


def test_fig4_demo_report(demo_system, benchmark):
    """Pie and bar charts on the paper's example instance."""
    demo_system.detect("customer")
    result = benchmark(audit, demo_system)
    _, audit_ms = timed(audit, demo_system)
    pie_rows = [
        {"category": category, "tuples": count}
        for category, count in result.pie_chart().items()
    ]
    report_series("FIG4 pie chart (tuple categories)", pie_rows)
    emit_bench_json("FIG4", pie_rows, metrics={"audit_ms": round(audit_ms, 3)})
    report_series(
        "FIG4 bar chart (per-attribute % dirty)",
        [
            {"attribute": attribute, "dirty_pct": round(categories.get("dirty", 0.0), 1)}
            for attribute, categories in result.bar_chart().items()
        ],
    )
    assert result.pie_chart()["dirty"] == 3
    assert result.worst_attributes(top=1)[0][0] == "STR"


@pytest.mark.parametrize("rate", [0.02, 0.08])
def test_fig4_report_vs_noise(benchmark, rate):
    """Dirty percentage and violation statistics as functions of the error rate."""
    _clean, noise = make_dirty_customers(500, rate=rate, seed=int(rate * 100))
    system = make_system(noise.dirty)
    system.detect("customer")
    result = benchmark(audit, system)
    benchmark.extra_info["noise_rate"] = rate
    benchmark.extra_info["dirty_percentage"] = round(result.dirty_percentage(), 2)
    benchmark.extra_info["avg_vio"] = round(result.statistics["avg_vio"], 3)
    report_series(
        f"FIG4 summary at noise rate {rate}",
        [
            {
                "dirty_pct": round(result.dirty_percentage(), 2),
                "single_violations": result.statistics["single_violations"],
                "multi_violations": result.statistics["multi_violations"],
                "max_group_size": result.statistics["max_group_size"],
            }
        ],
    )
    assert result.tuple_count == 500
