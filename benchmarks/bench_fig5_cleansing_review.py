"""FIG5 — Data cleansing review (paper Fig. 5).

Regenerates the review content: modified cells with ranked alternative
values, the effect of a user override (background incremental detection),
and times the candidate-repair computation plus review construction.
"""

import pytest

from bench_utils import emit_bench_json, make_dirty_customers, make_system, report_series, timed


def repair_and_review(system):
    repair = system.repair("customer")
    review = system.review("customer")
    return repair, review


def test_fig5_demo_review(demo_system, benchmark):
    """Repair of the paper's example and its review content."""
    demo_system.detect("customer")
    repair, review = benchmark(repair_and_review, demo_system)
    _, review_ms = timed(repair_and_review, demo_system)
    cell_rows = [
        {"tid": change.tid, "attribute": change.attribute,
         "old": change.old_value, "new": change.new_value,
         "alternatives": [value for value, _cost in change.alternatives[:3]]}
        for change in repair.changes
    ]
    report_series("FIG5 modified cells (red highlights)", cell_rows)
    emit_bench_json("FIG5", cell_rows, metrics={"repair_review_ms": round(review_ms, 3)})
    # The user rejects one change: the system immediately reports the
    # conflicts the original value re-introduces.
    street_changes = [c for c in review.modified_cells() if c.attribute == "STR"]
    if street_changes:
        change = street_changes[0]
        conflicts = review.override(change.tid, change.attribute, change.old_value)
        report_series(
            "FIG5 conflicts after user override",
            [{"cfd": note.cfd_id, "kind": note.kind, "tuples": note.tids} for note in conflicts],
        )
        assert conflicts
    assert repair.residual_violations == 0


@pytest.mark.parametrize("size", [300, 800])
def test_fig5_review_scales(benchmark, size):
    """Candidate repair + review construction time on generated dirty data."""
    clean, noise = make_dirty_customers(size, rate=0.03, seed=size + 5)
    system = make_system(noise.dirty)
    system.detect("customer")
    repair, review = benchmark(repair_and_review, system)
    benchmark.extra_info["size"] = size
    benchmark.extra_info["cells_changed"] = len(repair.changes)
    benchmark.extra_info["modified_tuples"] = len(review.modified_tuples())
    assert review.summary()["modified_cells"] == len(repair.changes)
