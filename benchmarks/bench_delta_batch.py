"""DELTA-BATCH — batched-transaction delta shipping and SQL-delta detection.

Two series, both on the unified DeltaBatch update path:

1. **Shipping cost** (``test_delta_shipping_cost``): bringing a file-backed
   SQLite copy up to date after a fixed update batch, either the
   pre-DeltaBatch way — one single-statement op *and one commit* per update
   (``per_statement``) — or as one coalesced ``apply_delta_batch`` round
   trip: executemany per op kind, a single transaction, one commit
   (``delta_batch``).  The per-statement series pays one WAL append per
   update; the batch pays one for the whole changeset, so the gap grows
   with the batch, not the relation.

2. **Incremental detection throughput** (``test_incremental_mode_round``):
   a monitored update batch plus the resulting violation report, with the
   incremental detector in ``native`` mode (Python group state) vs
   ``sql_delta`` mode (delta ``Q_C``/``Q_V`` re-checks pushed down to the
   backend copy).  This is the paper's "incremental SQL-based detection"
   running where the deltas already live.

``test_batched_shipping_beats_per_statement`` is the guard-rail: at the
largest configured size the batched transaction must beat per-statement
shipping outright, and both protocols (and both incremental modes) must
leave bit-identical backend copies and reports.

Set ``BENCH_SMOKE=1`` to run the smallest size only (the CI smoke mode).
"""

import os
import time

import pytest

from bench_utils import emit_bench_json, make_dirty_customers, report_series
from repro import Semandaq, SemandaqConfig
from repro.backends import DeltaBatch, SqliteBackend
from repro.detection.detector import ErrorDetector
from repro.monitor.updates import Update

SIZES = [600] if os.environ.get("BENCH_SMOKE") else [600, 2400, 9600]
#: updates per shipped batch
BATCH = 96
_CFDS = None  # created lazily; paper_cfds() validates against the schema


def _cfds():
    global _CFDS
    if _CFDS is None:
        from repro.datasets import paper_cfds

        _CFDS = paper_cfds()
    return _CFDS


_WORKLOADS = {
    size: make_dirty_customers(size, rate=0.04, seed=411 + size)[1].dirty
    for size in SIZES
}
#: guard-test timings, folded into the trajectory entry the parity test
#: emits (pytest runs the file's tests in definition order)
_GUARD_ROWS = []


def _update_batch(relation):
    """A fixed batch of idempotent per-tid cell updates."""
    tids = relation.tids()[:BATCH]
    return [(tid, {"STR": f"Delta Street {tid}"}) for tid in tids]


def _ship_per_statement(backend, batch):
    for tid, changes in batch:
        backend.update_row("customer", tid, changes)


def _ship_delta_batch(backend, batch):
    delta = DeltaBatch("customer")
    for tid, changes in batch:
        delta.record_update(tid, changes)
    backend.apply_delta_batch("customer", delta)


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("mode", ["per_statement", "delta_batch"])
def test_delta_shipping_cost(benchmark, tmp_path, mode, size):
    """Wall time of shipping one update batch to a file-backed SQLite copy."""
    relation = _WORKLOADS[size].copy()
    backend = SqliteBackend(path=str(tmp_path / f"ship_{mode}_{size}.db"))
    backend.add_relation(relation)
    batch = _update_batch(relation)
    ship = _ship_per_statement if mode == "per_statement" else _ship_delta_batch

    benchmark(ship, backend, batch)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["rows"] = size
    benchmark.extra_info["updates"] = BATCH
    benchmark.extra_info["commits"] = BATCH if mode == "per_statement" else 1
    backend.close()


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("mode", ["native", "sql_delta"])
def test_incremental_mode_round(benchmark, mode, size):
    """Wall time of one monitored update batch plus the refreshed report."""
    system = Semandaq(
        config=SemandaqConfig(backend="sqlite", incremental_mode=mode)
    )
    system.register_relation(_WORKLOADS[size].copy())
    system.add_cfds(_cfds())
    monitor = system.monitor("customer")
    relation = system.database.relation("customer")
    batch = _update_batch(relation)
    toggle = [False]

    def round_trip():
        # alternate between two value sets so every round really changes cells
        suffix = " alt" if toggle[0] else ""
        toggle[0] = not toggle[0]
        monitor.apply_batch(
            [
                Update.modify(tid, {attr: value + suffix for attr, value in changes.items()})
                for tid, changes in batch
            ]
        )
        return monitor.current_report()

    benchmark(round_trip)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["rows"] = size
    benchmark.extra_info["updates"] = BATCH
    system.close()


def _best_of(runs, fn, *args):
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_shipping_beats_per_statement(tmp_path):
    """Guard-rail: one transaction per batch must beat one commit per update,
    and both shipping protocols must produce identical backend copies."""
    size = max(SIZES)
    relation = _WORKLOADS[size].copy()
    backends = {}
    for mode in ("per_statement", "delta_batch"):
        backend = SqliteBackend(path=str(tmp_path / f"guard_{mode}.db"))
        backend.add_relation(relation.copy())
        backends[mode] = backend
    batch = _update_batch(relation)

    per_statement = _best_of(5, _ship_per_statement, backends["per_statement"], batch)
    batched = _best_of(5, _ship_delta_batch, backends["delta_batch"], batch)

    # identical end states, whichever protocol shipped the updates
    assert list(backends["per_statement"].iter_rows("customer")) == list(
        backends["delta_batch"].iter_rows("customer")
    )
    for backend in backends.values():
        backend.close()
    guard_rows = [
        {
            "rows": size,
            "updates": BATCH,
            "per_statement_ms": round(per_statement * 1e3, 3),
            "delta_batch_ms": round(batched * 1e3, 3),
            "speedup": round(per_statement / batched, 1),
        }
    ]
    _GUARD_ROWS[:] = guard_rows
    report_series("DELTA-BATCH guard", guard_rows)
    assert batched < per_statement, (
        f"batched transaction ({batched * 1e3:.2f} ms) must beat "
        f"per-statement shipping ({per_statement * 1e3:.2f} ms)"
    )


def test_incremental_modes_agree_with_oracle():
    """Guard-rail: both incremental modes report exactly what a fresh
    bulk-loaded SQL detector reports after the same monitored batch."""
    rows = []
    for size in SIZES:
        reports = {}
        for mode in ("native", "sql_delta"):
            system = Semandaq(
                config=SemandaqConfig(backend="sqlite", incremental_mode=mode)
            )
            system.register_relation(_WORKLOADS[size].copy())
            system.add_cfds(_cfds())
            relation = system.database.relation("customer")
            template = relation.get(relation.tids()[0])
            monitor = system.monitor("customer")
            monitor.apply_batch(
                [
                    Update.insert(dict(template, STR="A Brand New Street")),
                    Update.modify(relation.tids()[1], {"CNT": "Narnia"}),
                    Update.delete(relation.tids()[2]),
                ]
            )
            assert system.full_sync_count == 1  # registration only
            reports[mode] = monitor.current_report()

            oracle_backend = SqliteBackend()
            oracle_backend.add_relation(system.database.relation("customer"))
            oracle = ErrorDetector(oracle_backend, use_sql=True).detect(
                "customer", system.constraints.cfds("customer")
            )
            oracle_backend.close()
            assert reports[mode].vio() == oracle.vio()
            assert reports[mode].dirty_tids() == oracle.dirty_tids()
            if mode == "sql_delta":
                rows.append(
                    {
                        "rows": size,
                        "violations": reports[mode].total_violations(),
                        "delta_queries": monitor.summary()["delta_queries"],
                        "batches_shipped": monitor.summary()["batches_shipped"],
                    }
                )
            system.close()
        assert reports["native"].vio() == reports["sql_delta"].vio()
    report_series("DELTA-BATCH parity", rows)
    emit_bench_json("DELTA-BATCH", _GUARD_ROWS + rows)
