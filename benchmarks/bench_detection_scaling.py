"""DET-SCALE — SQL-based detection time vs relation size and vs number of CFDs.

Companion experiment of [3] (TODS 2008): detection compiled to SQL scales
roughly linearly with the relation size and with the number of CFDs /
pattern tuples.  Absolute numbers depend on the embedded engine; the *shape*
(linear growth, no blow-up with extra pattern tuples) is what this benchmark
checks.
"""

import pytest

from bench_utils import emit_bench_json, make_dirty_customers, make_system, report_series, timed
from repro.core.parser import parse_cfd
from repro.datasets import paper_cfds


def detect(system):
    return system.detect("customer")


@pytest.mark.parametrize("size", [200, 400, 800, 1600])
def test_detection_vs_relation_size(benchmark, size):
    """Detection wall time as the relation grows (fixed 4 CFDs, 3% noise)."""
    _clean, noise = make_dirty_customers(size, rate=0.03, seed=size)
    system = make_system(noise.dirty)
    report = benchmark(detect, system)
    benchmark.extra_info["size"] = size
    benchmark.extra_info["violations"] = report.total_violations()
    assert report.tuple_count == size


def extra_cfds(count):
    """Additional constant CFDs binding country codes, to grow the tableau."""
    bindings = [("31", "NL"), ("33", "FR"), ("49", "DE"), ("81", "JP"), ("34", "ES"),
                ("39", "IT"), ("46", "SE"), ("47", "NO"), ("41", "CH"), ("43", "AT")]
    cfds = []
    for index in range(count):
        code, country = bindings[index % len(bindings)]
        cfds.append(
            parse_cfd(
                f"customer: [CC='{code}{index}'] -> [CNT='{country}']",
                name=f"extra{index}",
            )
        )
    return cfds


@pytest.mark.parametrize("cfd_count", [4, 8, 16])
def test_detection_vs_number_of_cfds(benchmark, cfd_count):
    """Detection wall time as the number of CFDs grows (fixed 600 tuples)."""
    _clean, noise = make_dirty_customers(600, rate=0.03, seed=99)
    cfds = paper_cfds() + extra_cfds(cfd_count - 4)
    system = make_system(noise.dirty, cfds=cfds)
    report = benchmark(detect, system)
    benchmark.extra_info["cfds"] = cfd_count
    benchmark.extra_info["violations"] = report.total_violations()
    assert len(report.cfd_ids) == cfd_count


def test_detection_scaling_bench_json():
    """Timed size sweep (fixed 4 CFDs), persisted to the trajectory."""
    rows = []
    for size in (200, 800):
        _clean, noise = make_dirty_customers(size, rate=0.03, seed=size)
        system = make_system(noise.dirty)
        report, detect_ms = timed(detect, system)
        assert report.tuple_count == size
        rows.append(
            {
                "size": size,
                "detect_ms": round(detect_ms, 3),
                "violations": report.total_violations(),
            }
        )
    report_series("DET-SCALE summary", rows)
    emit_bench_json("DET-SCALE", rows)
