"""BATCH-RESIDENT — batch detection: ship-the-relation-back vs resident.

Before the batch port of the backend-resident assembly, ``detect()``
materialised the whole relation out of the storage backend
(``to_relation``) and enumerated group members through the in-memory hash
index — against a remote server that means shipping every row back per
detection.  The resident path answers ``Q_C``/``Q_V`` plus the
covering-members plans entirely inside the backend and assembles the
report from the (small) result rows.

Two series on SQLite at 600/2400/9600 rows:

* **``ship_back``** — the old protocol, reproduced as ``to_relation()``
  followed by native detection over the shipped copy: the cost of moving
  the relation dominates and grows linearly with it;
* **``resident``** — the current ``ErrorDetector.detect``: zero
  working-store reads, result-sized transfers only.

A second pair compares the restricted view: ``filter_after_detect`` (the
old ``detect_for_tuples`` semantics — full detection, then filter the
report) vs ``pushdown`` (delta ``Q_C``/``Q_V`` plans over the named tids
and their LHS groups).  The pushdown series still grows with the relation
— the restricted ``Q_V`` joins the tableau over the data — but roughly
2× slower than the full-detect series it replaces; the parameter traffic
is what tracks the restriction size.

``test_modes_agree_at_every_size`` is the guard-rail: identical violation
reports in both pairs at every size.  Set ``BENCH_SMOKE=1`` to run the
smallest size only (the CI smoke mode).
"""

import os

import pytest

from bench_utils import emit_bench_json, make_dirty_customers, report_series, timed
from repro.backends import SqliteBackend
from repro.datasets import paper_cfds
from repro.detection.detector import ErrorDetector
from repro.engine.database import Database
from repro.obs import Telemetry

SIZES = [600] if os.environ.get("BENCH_SMOKE") else [600, 2400, 9600]

_CFDS = paper_cfds()
_WORKLOADS = {
    size: make_dirty_customers(size, rate=0.04, seed=307 + size)[1].dirty
    for size in SIZES
}
#: restriction used by the detect_for_tuples series (a drill-down-sized ask)
_RESTRICTION = list(range(12))


def _loaded_backend(size):
    backend = SqliteBackend()
    backend.add_relation(_WORKLOADS[size].copy())
    return backend


def _ship_back_detect(backend):
    """The pre-port protocol: move the relation out, detect natively."""
    database = Database()
    database.add_relation(backend.to_relation("customer"))
    return ErrorDetector(database, use_sql=False).detect("customer", _CFDS)


def _filter_after_detect(detector, tids):
    """The old detect_for_tuples semantics: full detection, then filter."""
    report = detector.detect("customer", _CFDS)
    wanted = set(tids)
    return [v for v in report.violations if wanted & set(v.tids)]


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("mode", ["ship_back", "resident"])
def test_batch_detection_modes(benchmark, mode, size):
    """Wall time of one batch detection per transfer mode and size."""
    backend = _loaded_backend(size)
    if mode == "resident":
        detector = ErrorDetector(backend)
        report = benchmark(detector.detect, "customer", _CFDS)
    else:
        report = benchmark(_ship_back_detect, backend)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["rows"] = size
    benchmark.extra_info["violations"] = report.total_violations()
    backend.close()


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("mode", ["filter_after_detect", "pushdown"])
def test_restricted_detection_modes(benchmark, mode, size):
    """Wall time of the restricted ("why is this tuple dirty") view."""
    backend = _loaded_backend(size)
    detector = ErrorDetector(backend)
    if mode == "pushdown":
        report = benchmark(
            detector.detect_for_tuples, "customer", _CFDS, _RESTRICTION
        )
        violations = report.total_violations()
    else:
        filtered = benchmark(_filter_after_detect, detector, _RESTRICTION)
        violations = len(filtered)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["rows"] = size
    benchmark.extra_info["violations"] = violations
    backend.close()


#: telemetry overhead numbers, folded into the emitted trajectory entry
_OVERHEAD = {}


def test_telemetry_overhead_is_bounded():
    """Micro-check: full telemetry must not distort the detect numbers.

    The documented budget is < 5% on the batch-detect path (the disabled
    path is a single ``active`` check).  Wall-clock on a shared CI worker
    is too noisy to pin 5%, so the assertion is a lenient 3x backstop
    against something pathological (per-statement EXPLAIN on the hot path,
    say); the measured ratio lands in the trajectory for the real trend.
    """
    size = min(SIZES)
    runs = {}
    for label, telemetry in (
        ("off", None),
        ("on", Telemetry(enabled=True, explain_plans=True)),
    ):
        backend = _loaded_backend(size)
        detector = ErrorDetector(backend, telemetry=telemetry)
        detector.detect("customer", _CFDS)  # warm the plan cache
        best = min(
            timed(detector.detect, "customer", _CFDS)[1] for _ in range(5)
        )
        runs[label] = best
        backend.close()
    ratio = runs["on"] / runs["off"] if runs["off"] else 1.0
    _OVERHEAD.update(
        {
            "telemetry_off_ms": round(runs["off"], 3),
            "telemetry_on_ms": round(runs["on"], 3),
            "telemetry_overhead_ratio": round(ratio, 3),
        }
    )
    report_series("BATCH-RESIDENT telemetry overhead", [_OVERHEAD])
    assert ratio < 3.0, f"telemetry overhead ratio {ratio:.2f} exceeds backstop"


def _keys(violations):
    return sorted(
        (v.cfd_id, v.kind, v.tids, v.rhs_attribute, v.pattern_index, v.lhs_values)
        for v in violations
    )


def test_modes_agree_at_every_size():
    """Both transfer modes and both restriction modes report identically."""
    rows = []
    for size in SIZES:
        backend = _loaded_backend(size)
        detector = ErrorDetector(backend)
        resident, resident_ms = timed(detector.detect, "customer", _CFDS)
        shipped, shipped_ms = timed(_ship_back_detect, backend)
        assert _keys(resident.violations) == _keys(shipped.violations)
        assert resident.tuple_count == shipped.tuple_count
        pushdown = detector.detect_for_tuples("customer", _CFDS, _RESTRICTION)
        filtered = _filter_after_detect(detector, _RESTRICTION)
        assert _keys(pushdown.violations) == _keys(filtered)
        rows.append(
            {
                "rows": size,
                "violations": resident.total_violations(),
                "restricted_violations": pushdown.total_violations(),
                "resident_ms": round(resident_ms, 3),
                "ship_back_ms": round(shipped_ms, 3),
            }
        )
        backend.close()
    report_series("BATCH-RESIDENT parity", rows)
    emit_bench_json("BATCH-RESIDENT", rows, metrics=dict(_OVERHEAD))
