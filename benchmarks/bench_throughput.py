"""THROUGHPUT — concurrent detect serving over the reader-connection pool.

One scenario, the serving contract of the concurrent layer: N reader
threads run full ``detect`` calls against a file-backed SQLite store
while a writer streams coalescing ``DeltaBatch`` updates at a **fixed
offered rate** it is required to absorb (a monitor cannot drop its
update stream).  Two configurations serve the identical load:

- ``pooled`` — the reader-connection pool: every detect snapshots a
  read-only WAL connection, the writer streams through its own
  connection untouched.
- ``single`` — the ``pool_size=0`` baseline: one connection, every read
  and write serialised through the writer's lock.

Raw read QPS alone would reward the baseline for *starving the writer*
(readers hog the shared connection's lock, the update stream silently
falls behind and every report goes stale), so the figure of merit is
**goodput**: detect QPS scaled by the fraction of the offered update
stream actually applied inside the measurement window::

    goodput = qps * min(1.0, batches_applied / batches_offered)

The writer toggles a fixed tid set between two complete states A and B,
one atomic batch per toggle, and every concurrent report must equal the
serial oracle of state A or of state B **exactly** — a torn snapshot
(mixed states) or any other divergence counts as a parity violation,
and the run demands zero.

``test_pooled_beats_single_connection`` is the guard-rail: at 4 readers
the pooled goodput must be at least 1.5x the single-connection
baseline's, with both writers' keep-up fractions reported.  The guard
is skipped in smoke mode (timing assertions on shared CI runners are
noise); the parity and pool-accounting assertions always run.

Set ``BENCH_SMOKE=1`` to run the reduced load (the CI smoke mode).
"""

import os
import threading
import time

from bench_utils import emit_bench_json, report_series
from repro.backends import DeltaBatch, SqliteBackend
from repro.datasets import generate_customers, inject_noise, paper_cfds
from repro.detection.detector import ErrorDetector

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
#: relation size, toggled tids per batch, offered batches/second
SIZE = 600 if SMOKE else 2400
BATCH_ROWS = 100 if SMOKE else 200
OFFERED_RATE = 40.0 if SMOKE else 80.0
#: full detects each reader thread performs per trial
DETECTS_PER_READER = 3 if SMOKE else 24
READER_COUNTS = [1, 4] if SMOKE else [1, 2, 4, 8]
POOL_SIZE = 8

_CFDS = paper_cfds()
_BASE = inject_noise(
    generate_customers(SIZE, seed=7),
    rate=0.03,
    seed=8,
    attributes=["CNT", "CITY", "STR", "CC"],
).dirty
#: series rows collected by the trial test, emitted by the guard test
#: (pytest runs the file's tests in definition order)
_ROWS = []
_POOL_METRICS = {}


def _toggle_batch(state):
    """The atomic batch writing every toggled tid to ``state`` (A or B).

    CNT sits on both sides of the paper's CFD set (RHS of phi3/phi4, LHS
    of phi1/phi2), so the two states produce structurally different
    reports — state B additionally breaks phi4's constant patterns for
    every toggled tid with a 44/01 country code.
    """
    value = "UK" if state == "A" else "Albion"
    batch = DeltaBatch("customer")
    for tid in range(BATCH_ROWS):
        batch.record_update(tid, {"CNT": value})
    return batch


def _canonical(report):
    """Order-independent identity of a violation report."""
    return (
        report.tuple_count,
        tuple(
            sorted(
                (v.cfd_id, v.kind, v.tids, v.rhs_attribute, v.pattern_index, v.lhs_values)
                for v in report.violations
            )
        ),
    )


def _oracles(tmp_path):
    """Serial single-thread reports for complete states A and B."""
    oracles = {}
    for state in ("A", "B"):
        backend = SqliteBackend(path=str(tmp_path / f"oracle_{state}.db"))
        backend.add_relation(_BASE.copy())
        backend.apply_delta_batch("customer", _toggle_batch(state))
        report = ErrorDetector(backend).detect("customer", _CFDS)
        oracles[state] = _canonical(report)
        backend.close()
    assert oracles["A"] != oracles["B"], "toggle must change the report"
    return oracles


def _trial(tmp_path, label, pool_size, readers, oracles):
    """One serving run: QPS, writer keep-up, parity failures, pool stats."""
    backend = SqliteBackend(
        path=str(tmp_path / f"serve_{label}_{readers}.db"), pool_size=pool_size
    )
    backend.add_relation(_BASE.copy())
    backend.apply_delta_batch("customer", _toggle_batch("A"))
    detector = ErrorDetector(backend)
    detector.detect("customer", _CFDS)  # warm plans, indexes, tableaux

    stop = threading.Event()
    applied = [0]
    started = [0.0]
    # built once so the stream's cost is the apply itself, not re-building
    # the same change set on every toggle
    batches = (_toggle_batch("A"), _toggle_batch("B"))

    def writer():
        state = 0
        while not stop.is_set():
            # paced schedule: batch k is due at start + k/rate; when the
            # connection was held by readers the writer applies back to
            # back until it catches up — offered load is never reduced
            due = started[0] + applied[0] / OFFERED_RATE
            delay = due - time.perf_counter()
            if delay > 0 and stop.wait(delay):
                return
            backend.apply_delta_batch("customer", batches[state])
            applied[0] += 1
            state ^= 1

    valid = set(oracles.values())
    parity_failures = [0]
    barrier = threading.Barrier(readers + 1)

    def reader():
        barrier.wait()
        for _ in range(DETECTS_PER_READER):
            report = detector.detect("customer", _CFDS)
            if _canonical(report) not in valid:
                parity_failures[0] += 1

    writer_thread = threading.Thread(target=writer)
    threads = [threading.Thread(target=reader) for _ in range(readers)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started[0] = time.perf_counter()
    writer_thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started[0]
    stop.set()
    writer_thread.join()

    qps = readers * DETECTS_PER_READER / elapsed
    keepup = min(1.0, applied[0] / (OFFERED_RATE * elapsed))
    stats = backend.pool_stats()
    backend.close()
    return {
        "mode": label,
        "readers": readers,
        "qps": round(qps, 1),
        "write_keepup": round(keepup, 3),
        "goodput": round(qps * keepup, 1),
        "parity_failures": parity_failures[0],
    }, stats


def test_concurrent_serving_parity_and_qps(tmp_path):
    """Serve the fixed write load at every reader count, both configs.

    Every concurrent report must equal the state-A or state-B oracle
    exactly; the pooled runs must also account every connection hand-out
    in the pool counters.
    """
    oracles = _oracles(tmp_path)
    for readers in READER_COUNTS:
        pooled, stats = _trial(tmp_path, "pooled", POOL_SIZE, readers, oracles)
        single, _ = _trial(tmp_path, "single", 0, readers, oracles)
        _ROWS.extend([pooled, single])
        assert pooled["parity_failures"] == 0, pooled
        assert single["parity_failures"] == 0, single
        assert stats["pool.acquired"] >= readers * DETECTS_PER_READER
        assert 1 <= stats["pool.open"] <= POOL_SIZE
        _POOL_METRICS.update(
            {key: value for key, value in stats.items() if key.startswith("pool.")}
        )
    report_series("THROUGHPUT", _ROWS)


def test_pooled_beats_single_connection():
    """Guard-rail: pooled goodput at 4 readers >= 1.5x the baseline's.

    The baseline either keeps up with the update stream (and its readers
    crawl behind the shared lock) or keeps its read QPS by dropping the
    stream — either way its goodput collapses; the pool absorbs the same
    load with read capacity to spare.
    """
    by_key = {(row["mode"], row["readers"]): row for row in _ROWS}
    pooled = by_key[("pooled", 4)] if not SMOKE else by_key[("pooled", READER_COUNTS[-1])]
    single = by_key[("single", 4)] if not SMOKE else by_key[("single", READER_COUNTS[-1])]
    assert pooled["write_keepup"] >= 0.9, (
        f"pooled config must absorb the offered stream: {pooled}"
    )
    speedup = pooled["goodput"] / single["goodput"]
    metrics = dict(
        _POOL_METRICS,
        speedup_at_4_readers=round(speedup, 2),
        offered_batches_per_s=OFFERED_RATE,
        batch_rows=BATCH_ROWS,
    )
    emit_bench_json("THROUGHPUT", _ROWS, metrics=metrics)
    if SMOKE:
        return  # timing guard is meaningless on shared smoke runners
    assert speedup >= 1.5, (
        f"pooled goodput {pooled['goodput']} must be >= 1.5x the "
        f"single-connection baseline {single['goodput']} (got {speedup:.2f}x)"
    )
