"""CONS-CHECK — satisfiability checking time vs number of CFDs.

The constraint engine warns users when "the specified set of CFDs does not
make sense".  This benchmark measures the witness-search cost as the number
of registered CFDs grows, and the cost of diagnosing an inconsistent set
(which additionally shrinks a conflicting core).
"""

import pytest

from bench_utils import emit_bench_json, report_series, timed
from repro.analysis.consistency import check_consistency
from repro.core.parser import parse_cfd
from repro.datasets import paper_cfds


def constant_bindings(count):
    """`count` constant CFDs binding synthetic country codes to countries."""
    cfds = []
    for index in range(count):
        cfds.append(
            parse_cfd(
                f"customer: [CC='{100 + index}'] -> [CNT='C{index}']",
                name=f"bind{index}",
            )
        )
    return cfds


@pytest.mark.parametrize("cfd_count", [4, 16, 64])
def test_consistency_check_vs_cfd_count(benchmark, cfd_count):
    """Witness search over a growing, consistent constraint set."""
    cfds = (paper_cfds() + constant_bindings(cfd_count))[:cfd_count]
    result = benchmark(check_consistency, cfds)
    benchmark.extra_info["cfds"] = cfd_count
    assert result.consistent


def test_inconsistent_set_diagnosis(benchmark):
    """Detecting an inconsistent set and shrinking it to a conflicting core."""
    cfds = paper_cfds() + constant_bindings(12)
    cfds.append(parse_cfd("customer: [CC=_] -> [CNT='EVERYWHERE']", name="bad1"))
    cfds.append(parse_cfd("customer: [CC=_] -> [CNT='NOWHERE']", name="bad2"))
    result = benchmark(check_consistency, cfds)
    benchmark.extra_info["conflict_core"] = result.conflict
    assert not result.consistent
    assert result.conflict and len(result.conflict) <= 3


def test_consistency_bench_json():
    """Timed witness-search summary over the CFD-count sweep."""
    rows = []
    for cfd_count in (4, 16, 64):
        cfds = (paper_cfds() + constant_bindings(cfd_count))[:cfd_count]
        result, check_ms = timed(check_consistency, cfds)
        assert result.consistent
        rows.append({"cfds": cfd_count, "check_ms": round(check_ms, 3)})
    report_series("CONS-CHECK summary", rows)
    emit_bench_json("CONS-CHECK", rows)
