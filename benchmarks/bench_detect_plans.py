"""DETECT-PLANS — detection plan families: legacy vs sargable vs window.

The plan-variant layer compiles the paper's ``Q_C``/``Q_V`` pair three
ways: the **legacy** tableau-joined form (non-sargable wildcard predicate,
per-pattern fan-out inside one statement, separate covering-members round
trip), the **sargable** per-pattern specialization (constant LHS positions
become ``t.A = ?`` equalities riding the auto-built CFD-LHS index), and
the one-pass **window** family (violating groups *and* member rows in a
single statement — the detect→covering-members round trip disappears).

Two tableau shapes on SQLite at 600/2400/9600 rows:

* **narrow** — the paper's phi1…phi4: wildcard-heavy patterns where the
  win comes from the one-pass ``Q_V`` (fewer statements, no members
  round trip);
* **wide** — a constant-heavy tableau (one constant pattern per country
  in the geography domain, plus the conditional phi2) where the sargable
  constant binds let the index prune each per-pattern statement.

``test_families_agree_at_every_size`` is the guard-rail: bit-identical
violation reports across all three families (and the memory backend's
fallback) at every size and shape.  Set ``BENCH_SMOKE=1`` to run the
smallest size only (the CI smoke mode).
"""

import os

import pytest

from bench_utils import emit_bench_json, make_dirty_customers, report_series, timed
from repro.backends import SqliteBackend
from repro.core.parser import parse_cfd
from repro.datasets import paper_cfds
from repro.detection.detector import ErrorDetector
from repro.engine.database import Database

SIZES = [600] if os.environ.get("BENCH_SMOKE") else [600, 2400, 9600]
PLANS = ["legacy", "sargable", "window"]

#: constant-heavy tableau: the geography table's CC->CNT associations as
#: explicit constant patterns (the noise flips CNT/CC cells, so each
#: pattern catches real single-tuple violations), plus the paper's
#: conditional phi2 so the wide shape also exercises a constant-LHS Q_V
_WIDE_CFDS = [
    parse_cfd(
        "customer: [CC='44'] -> [CNT='UK'] ; [CC='01'] -> [CNT='US'] ; "
        "[CC='31'] -> [CNT='NL'] ; [CC='49'] -> [CNT='DE'] ; "
        "[CC='33'] -> [CNT='FR']",
        name="phi_codes",
    ),
    parse_cfd("customer: [CNT='UK', ZIP=_] -> [STR=_]", name="phi2c"),
]

_SHAPES = {
    "narrow": paper_cfds(),
    "wide": _WIDE_CFDS,
}

_WORKLOADS = {
    size: make_dirty_customers(size, rate=0.04, seed=523 + size)[1].dirty
    for size in SIZES
}


def _loaded_backend(size):
    backend = SqliteBackend()
    backend.add_relation(_WORKLOADS[size].copy())
    return backend


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("shape", list(_SHAPES))
@pytest.mark.parametrize("plan", PLANS)
def test_detect_plan_families(benchmark, plan, shape, size):
    """Wall time of one warm batch detection per plan family."""
    backend = _loaded_backend(size)
    detector = ErrorDetector(backend, detect_plan=plan)
    cfds = _SHAPES[shape]
    detector.detect("customer", cfds)  # warm the plan cache
    report = benchmark(detector.detect, "customer", cfds)
    benchmark.extra_info["plan"] = plan
    benchmark.extra_info["shape"] = shape
    benchmark.extra_info["rows"] = size
    benchmark.extra_info["violations"] = report.total_violations()
    backend.close()


def _keys(report):
    return sorted(
        (v.cfd_id, v.kind, v.tids, v.rhs_attribute, v.pattern_index, v.lhs_values)
        for v in report.violations
    )


def test_families_agree_at_every_size():
    """All three families (and the memory fallback) report identically."""
    rows = []
    for shape, cfds in _SHAPES.items():
        for size in SIZES:
            backend = _loaded_backend(size)
            timings = {}
            reports = {}
            for plan in PLANS:
                detector = ErrorDetector(backend, detect_plan=plan)
                detector.detect("customer", cfds)  # warm the plan cache
                best = None
                for _ in range(3):
                    report, elapsed = timed(detector.detect, "customer", cfds)
                    best = elapsed if best is None else min(best, elapsed)
                timings[plan] = best
                reports[plan] = _keys(report)
            assert reports["legacy"] == reports["sargable"] == reports["window"]
            # the embedded engine resolves window to its legacy fallback —
            # and still agrees bit for bit
            database = Database()
            database.add_relation(_WORKLOADS[size].copy())
            memory = ErrorDetector(database, detect_plan="window").detect(
                "customer", cfds
            )
            assert _keys(memory) == reports["legacy"]
            rows.append(
                {
                    "shape": shape,
                    "rows": size,
                    "violations": len(reports["legacy"]),
                    "legacy_ms": round(timings["legacy"], 3),
                    "sargable_ms": round(timings["sargable"], 3),
                    "window_ms": round(timings["window"], 3),
                }
            )
            backend.close()
    report_series("DETECT-PLANS", rows)
    top = max(SIZES)
    by_key = {(row["shape"], row["rows"]): row for row in rows}
    narrow_top = by_key[("narrow", top)]
    wide_top = by_key[("wide", top)]
    metrics = {
        "window_speedup_narrow_top": round(
            narrow_top["legacy_ms"] / narrow_top["window_ms"], 3
        ),
        "sargable_speedup_wide_top": round(
            wide_top["legacy_ms"] / wide_top["sargable_ms"], 3
        ),
    }
    emit_bench_json("DETECT-PLANS", rows, metrics=metrics)
    if not os.environ.get("BENCH_SMOKE"):
        # the acceptance claims, on the full sizes only (the smoke run is
        # too small for stable timings): the one-pass window plan beats
        # legacy on the wildcard-heavy tableau, and the sargable constant
        # binds are at least on par with legacy on the constant-heavy one
        assert narrow_top["window_ms"] < narrow_top["legacy_ms"], narrow_top
        assert wide_top["sargable_ms"] <= wide_top["legacy_ms"] * 1.05, wide_top
